// Package evm implements a compact Ethereum Virtual Machine: a 256-bit
// stack machine with memory, contract storage, gas accounting and nested
// message calls.
//
// The paper's fork was triggered by a contract — the DAO — whose reentrancy
// bug let an attacker drain ~$50M, and Fig 2 (bottom) classifies ledger
// transactions into contract calls vs plain transfers. This package gives
// forkwatch both: contract transactions carry real bytecode executed here,
// and the daoattack example reproduces the reentrancy drain that motivated
// the hard fork.
//
// The instruction set is the subset needed for realistic
// transfer/withdraw/ledger contracts (arithmetic, comparison, Keccak,
// storage, control flow, CALL with value and stipend semantics, CREATE,
// RETURN/REVERT). Gas costs follow the Homestead schedule in shape
// (storage writes dominate; calls carry a stipend) with simplified memory
// pricing; DESIGN.md records the substitution.
package evm

import (
	"errors"
	"fmt"
	"math/big"

	"forkwatch/internal/keccak"
	"forkwatch/internal/state"
	"forkwatch/internal/types"
)

// Execution errors. ErrRevert preserves state-refund semantics (remaining
// gas is returned); all other errors consume all gas, as in Ethereum.
var (
	ErrOutOfGas            = errors.New("evm: out of gas")
	ErrStackUnderflow      = errors.New("evm: stack underflow")
	ErrStackOverflow       = errors.New("evm: stack overflow")
	ErrInvalidJump         = errors.New("evm: invalid jump destination")
	ErrInvalidOpcode       = errors.New("evm: invalid opcode")
	ErrRevert              = errors.New("evm: execution reverted")
	ErrDepth               = errors.New("evm: max call depth exceeded")
	ErrInsufficientBalance = errors.New("evm: insufficient balance for transfer")
	ErrGasUintOverflow     = errors.New("evm: gas overflow")
)

// MaxCallDepth bounds nested calls, as in Ethereum (1024).
const MaxCallDepth = 1024

// CallStipend is the free gas given to the callee of a value transfer,
// enough to log but famously enough to re-enter cheap code — the DAO bug.
const CallStipend = 2300

// Gas cost constants (Homestead-shaped, simplified).
const (
	GasQuickStep   = 2
	GasFastestStep = 3
	GasFastStep    = 5
	GasMidStep     = 8
	GasSlowStep    = 10
	GasBalance     = 20
	GasSload       = 50
	GasSstoreSet   = 20000
	GasSstoreReset = 5000
	GasCall        = 40
	GasCallValue   = 9000
	GasCreate      = 32000
	GasMemWord     = 3
	GasSha3        = 30
	GasSha3Word    = 6
	GasLog         = 375
	GasCopyWord    = 3
)

// Context carries per-block and per-transaction execution environment.
type Context struct {
	BlockNumber *big.Int
	Timestamp   uint64
	Coinbase    types.Address
	ChainID     uint64
	// Origin is the transaction sender (ORIGIN opcode); GasPrice its
	// gas price (GASPRICE opcode).
	Origin   types.Address
	GasPrice *big.Int
}

// EVM executes message calls against a state.DB.
type EVM struct {
	State *state.DB
	Ctx   Context
	// Logs accumulates LOG0..LOG4 events; entries from reverted frames
	// are discarded. Reset between transactions by the processor.
	Logs  []Log
	depth int
}

// New returns an EVM bound to the given state and block context.
func New(st *state.DB, ctx Context) *EVM {
	if ctx.BlockNumber == nil {
		ctx.BlockNumber = new(big.Int)
	}
	return &EVM{State: st, Ctx: ctx}
}

// Call runs the code at `to` with the given input, transferring value from
// caller. It returns the output, the gas left, and an error for failed
// executions (whose state effects are rolled back).
func (e *EVM) Call(caller, to types.Address, input []byte, value *big.Int, gas uint64) ([]byte, uint64, error) {
	if e.depth >= MaxCallDepth {
		return nil, gas, ErrDepth
	}
	if value == nil {
		value = new(big.Int)
	}
	if e.State.GetBalance(caller).Cmp(value) < 0 {
		return nil, gas, ErrInsufficientBalance
	}
	snap := e.State.Snapshot()
	e.State.SubBalance(caller, value)
	e.State.AddBalance(to, value)

	code := e.State.GetCode(to)
	if len(code) == 0 {
		return nil, gas, nil // plain transfer
	}
	logMark := len(e.Logs)
	e.depth++
	ret, left, err := e.run(newFrame(caller, to, input, value, gas, code))
	e.depth--
	if err != nil {
		e.State.RevertToSnapshot(snap)
		e.Logs = e.Logs[:logMark]
		if !errors.Is(err, ErrRevert) {
			left = 0
		}
	}
	return ret, left, err
}

// Create deploys a contract: runs initCode and installs its return value
// as the contract code at an address derived from caller and nonce.
func (e *EVM) Create(caller types.Address, initCode []byte, value *big.Int, gas uint64) (types.Address, uint64, error) {
	if e.depth >= MaxCallDepth {
		return types.Address{}, gas, ErrDepth
	}
	if value == nil {
		value = new(big.Int)
	}
	if e.State.GetBalance(caller).Cmp(value) < 0 {
		return types.Address{}, gas, ErrInsufficientBalance
	}
	nonce := e.State.GetNonce(caller)
	e.State.SetNonce(caller, nonce+1)
	addr := CreateAddress(caller, nonce)

	snap := e.State.Snapshot()
	e.State.SubBalance(caller, value)
	e.State.AddBalance(addr, value)
	e.State.SetNonce(addr, 1)

	logMark := len(e.Logs)
	e.depth++
	code, left, err := e.run(newFrame(caller, addr, nil, value, gas, initCode))
	e.depth--
	if err != nil {
		e.State.RevertToSnapshot(snap)
		e.Logs = e.Logs[:logMark]
		if !errors.Is(err, ErrRevert) {
			left = 0
		}
		return types.Address{}, left, err
	}
	// Charge code-deposit gas (200/byte in Ethereum; simplified to the
	// same rate).
	deposit := uint64(len(code)) * 200
	if left < deposit {
		e.State.RevertToSnapshot(snap)
		return types.Address{}, 0, ErrOutOfGas
	}
	left -= deposit
	e.State.SetCode(addr, code)
	return addr, left, nil
}

// CreateAddress derives a contract address from creator and nonce, as
// Ethereum does: low 20 bytes of keccak256(rlp([caller, nonce])).
func CreateAddress(caller types.Address, nonce uint64) types.Address {
	// Inline minimal RLP: list of the 20-byte address and the nonce.
	payload := append([]byte{0x80 + 20}, caller.Bytes()...)
	if nonce == 0 {
		payload = append(payload, 0x80)
	} else if nonce < 0x80 {
		payload = append(payload, byte(nonce))
	} else {
		var nb []byte
		for v := nonce; v > 0; v >>= 8 {
			nb = append([]byte{byte(v)}, nb...)
		}
		payload = append(payload, 0x80+byte(len(nb)))
		payload = append(payload, nb...)
	}
	enc := append([]byte{0xc0 + byte(len(payload))}, payload...)
	h := keccak.Sum256(enc)
	return types.BytesToAddress(h[12:])
}

// frame is one execution context: code, stack, memory, gas.
type frame struct {
	caller  types.Address
	address types.Address
	input   []byte
	value   *big.Int
	gas     uint64
	code    []byte

	pc         uint64
	stack      []*big.Int
	mem        []byte
	returnData []byte
	jumpdests  map[uint64]bool
}

func newFrame(caller, address types.Address, input []byte, value *big.Int, gas uint64, code []byte) *frame {
	f := &frame{
		caller: caller, address: address, input: input, value: value,
		gas: gas, code: code,
		stack:     make([]*big.Int, 0, 32),
		jumpdests: make(map[uint64]bool),
	}
	// Pre-scan valid JUMPDESTs, skipping PUSH data.
	for i := uint64(0); i < uint64(len(code)); i++ {
		op := OpCode(code[i])
		if op == JUMPDEST {
			f.jumpdests[i] = true
		} else if op >= PUSH1 && op <= PUSH32 {
			i += uint64(op - PUSH1 + 1)
		}
	}
	return f
}

var tt256 = new(big.Int).Lsh(big.NewInt(1), 256)
var tt256m1 = new(big.Int).Sub(tt256, big.NewInt(1))

func u256(v *big.Int) *big.Int { return v.And(v, tt256m1) }

func (f *frame) push(v *big.Int) error {
	if len(f.stack) >= 1024 {
		return ErrStackOverflow
	}
	f.stack = append(f.stack, v)
	return nil
}

func (f *frame) pop() (*big.Int, error) {
	if len(f.stack) == 0 {
		return nil, ErrStackUnderflow
	}
	v := f.stack[len(f.stack)-1]
	f.stack = f.stack[:len(f.stack)-1]
	return v, nil
}

func (f *frame) peek(n int) (*big.Int, error) {
	if len(f.stack) < n+1 {
		return nil, ErrStackUnderflow
	}
	return f.stack[len(f.stack)-1-n], nil
}

// useGas deducts amount, reporting out-of-gas.
func (f *frame) useGas(amount uint64) error {
	if f.gas < amount {
		return ErrOutOfGas
	}
	f.gas -= amount
	return nil
}

// extendMem grows memory to cover [offset, offset+size), charging linear
// word gas for the growth.
func (f *frame) extendMem(offset, size *big.Int) error {
	if size.Sign() == 0 {
		return nil
	}
	if !offset.IsUint64() || !size.IsUint64() {
		return ErrGasUintOverflow
	}
	end := offset.Uint64() + size.Uint64()
	if end < offset.Uint64() || end > 1<<32 {
		return ErrGasUintOverflow
	}
	if uint64(len(f.mem)) >= end {
		return nil
	}
	newWords := (end + 31) / 32
	oldWords := (uint64(len(f.mem)) + 31) / 32
	if err := f.useGas((newWords - oldWords) * GasMemWord); err != nil {
		return err
	}
	grown := make([]byte, newWords*32)
	copy(grown, f.mem)
	f.mem = grown
	return nil
}

func (f *frame) memSlice(offset, size uint64) []byte {
	if size == 0 {
		return nil
	}
	return f.mem[offset : offset+size]
}

// run interprets the frame's code to completion.
func (e *EVM) run(f *frame) ([]byte, uint64, error) {
	for {
		if f.pc >= uint64(len(f.code)) {
			return nil, f.gas, nil // implicit STOP
		}
		op := OpCode(f.code[f.pc])
		ret, done, err := e.step(f, op)
		if err != nil {
			return nil, f.gas, err
		}
		if done {
			return ret, f.gas, nil
		}
	}
}

// step executes a single opcode; done reports normal termination.
func (e *EVM) step(f *frame, op OpCode) (ret []byte, done bool, err error) {
	switch {
	case op >= PUSH1 && op <= PUSH32:
		if err := f.useGas(GasFastestStep); err != nil {
			return nil, false, err
		}
		n := uint64(op-PUSH1) + 1
		end := f.pc + 1 + n
		var data []byte
		if f.pc+1 <= uint64(len(f.code)) {
			if end > uint64(len(f.code)) {
				end = uint64(len(f.code))
			}
			data = f.code[f.pc+1 : end]
		}
		v := new(big.Int).SetBytes(data)
		// Right-pad truncated push data, as Ethereum does.
		if short := n - uint64(len(data)); short > 0 {
			v.Lsh(v, uint(8*short))
		}
		if err := f.push(v); err != nil {
			return nil, false, err
		}
		f.pc += n + 1
		return nil, false, nil

	case op >= DUP1 && op <= DUP16:
		if err := f.useGas(GasFastestStep); err != nil {
			return nil, false, err
		}
		v, err := f.peek(int(op - DUP1))
		if err != nil {
			return nil, false, err
		}
		if err := f.push(new(big.Int).Set(v)); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case op >= SWAP1 && op <= SWAP16:
		if err := f.useGas(GasFastestStep); err != nil {
			return nil, false, err
		}
		n := int(op-SWAP1) + 1
		if len(f.stack) < n+1 {
			return nil, false, ErrStackUnderflow
		}
		top := len(f.stack) - 1
		f.stack[top], f.stack[top-n] = f.stack[top-n], f.stack[top]
		f.pc++
		return nil, false, nil
	}

	switch op {
	case STOP:
		return nil, true, nil

	case ADD, SUB, MUL, DIV, MOD, AND, OR, XOR, LT, GT, EQ:
		cost := uint64(GasFastestStep)
		if op == MUL || op == DIV || op == MOD {
			cost = GasFastStep
		}
		if err := f.useGas(cost); err != nil {
			return nil, false, err
		}
		x, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		y, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		var z *big.Int
		switch op {
		case ADD:
			z = u256(new(big.Int).Add(x, y))
		case SUB:
			z = u256(new(big.Int).Sub(x, y))
		case MUL:
			z = u256(new(big.Int).Mul(x, y))
		case DIV:
			if y.Sign() == 0 {
				z = new(big.Int)
			} else {
				z = new(big.Int).Div(x, y)
			}
		case MOD:
			if y.Sign() == 0 {
				z = new(big.Int)
			} else {
				z = new(big.Int).Mod(x, y)
			}
		case AND:
			z = new(big.Int).And(x, y)
		case OR:
			z = new(big.Int).Or(x, y)
		case XOR:
			z = new(big.Int).Xor(x, y)
		case LT:
			z = boolToBig(x.Cmp(y) < 0)
		case GT:
			z = boolToBig(x.Cmp(y) > 0)
		case EQ:
			z = boolToBig(x.Cmp(y) == 0)
		}
		if err := f.push(z); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case ISZERO, NOT:
		if err := f.useGas(GasFastestStep); err != nil {
			return nil, false, err
		}
		x, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		var z *big.Int
		if op == ISZERO {
			z = boolToBig(x.Sign() == 0)
		} else {
			z = new(big.Int).Xor(x, tt256m1)
		}
		if err := f.push(z); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case SHA3:
		off, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		size, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		if err := f.extendMem(off, size); err != nil {
			return nil, false, err
		}
		words := (size.Uint64() + 31) / 32
		if err := f.useGas(GasSha3 + GasSha3Word*words); err != nil {
			return nil, false, err
		}
		h := keccak.Sum256(f.memSlice(off.Uint64(), size.Uint64()))
		if err := f.push(new(big.Int).SetBytes(h[:])); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case ADDRESS, CALLER, CALLVALUE, CALLDATASIZE, NUMBER, TIMESTAMP, GAS, CHAINID:
		if err := f.useGas(GasQuickStep); err != nil {
			return nil, false, err
		}
		var v *big.Int
		switch op {
		case ADDRESS:
			v = new(big.Int).SetBytes(f.address.Bytes())
		case CALLER:
			v = new(big.Int).SetBytes(f.caller.Bytes())
		case CALLVALUE:
			v = new(big.Int).Set(f.value)
		case CALLDATASIZE:
			v = big.NewInt(int64(len(f.input)))
		case NUMBER:
			v = new(big.Int).Set(e.Ctx.BlockNumber)
		case TIMESTAMP:
			v = new(big.Int).SetUint64(e.Ctx.Timestamp)
		case GAS:
			v = new(big.Int).SetUint64(f.gas)
		case CHAINID:
			v = new(big.Int).SetUint64(e.Ctx.ChainID)
		}
		if err := f.push(v); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case BALANCE:
		if err := f.useGas(GasBalance); err != nil {
			return nil, false, err
		}
		x, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		bal := e.State.GetBalance(types.BytesToAddress(x.Bytes()))
		if err := f.push(bal); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case CALLDATALOAD:
		if err := f.useGas(GasFastestStep); err != nil {
			return nil, false, err
		}
		off, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		var word [32]byte
		if off.IsUint64() {
			start := off.Uint64()
			for i := uint64(0); i < 32; i++ {
				if start+i < uint64(len(f.input)) {
					word[i] = f.input[start+i]
				}
			}
		}
		if err := f.push(new(big.Int).SetBytes(word[:])); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case POP:
		if err := f.useGas(GasQuickStep); err != nil {
			return nil, false, err
		}
		if _, err := f.pop(); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case MLOAD, MSTORE:
		if err := f.useGas(GasFastestStep); err != nil {
			return nil, false, err
		}
		off, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		if err := f.extendMem(off, big.NewInt(32)); err != nil {
			return nil, false, err
		}
		if op == MLOAD {
			v := new(big.Int).SetBytes(f.memSlice(off.Uint64(), 32))
			if err := f.push(v); err != nil {
				return nil, false, err
			}
		} else {
			v, err := f.pop()
			if err != nil {
				return nil, false, err
			}
			b := v.Bytes()
			dst := f.memSlice(off.Uint64(), 32)
			for i := range dst {
				dst[i] = 0
			}
			copy(dst[32-len(b):], b)
		}
		f.pc++
		return nil, false, nil

	case SLOAD:
		if err := f.useGas(GasSload); err != nil {
			return nil, false, err
		}
		k, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		v := e.State.GetState(f.address, types.BytesToHash(k.Bytes()))
		if err := f.push(v.Big()); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case SSTORE:
		k, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		v, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		key := types.BytesToHash(k.Bytes())
		cur := e.State.GetState(f.address, key)
		cost := uint64(GasSstoreReset)
		if cur.IsZero() && v.Sign() != 0 {
			cost = GasSstoreSet
		}
		if err := f.useGas(cost); err != nil {
			return nil, false, err
		}
		e.State.SetState(f.address, key, types.BytesToHash(v.Bytes()))
		f.pc++
		return nil, false, nil

	case JUMP, JUMPI:
		if err := f.useGas(GasMidStep); err != nil {
			return nil, false, err
		}
		dst, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		take := true
		if op == JUMPI {
			cond, err := f.pop()
			if err != nil {
				return nil, false, err
			}
			take = cond.Sign() != 0
		}
		if take {
			if !dst.IsUint64() || !f.jumpdests[dst.Uint64()] {
				return nil, false, fmt.Errorf("%w: pc %v", ErrInvalidJump, dst)
			}
			f.pc = dst.Uint64()
		} else {
			f.pc++
		}
		return nil, false, nil

	case PC:
		if err := f.useGas(GasQuickStep); err != nil {
			return nil, false, err
		}
		if err := f.push(new(big.Int).SetUint64(f.pc)); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case JUMPDEST:
		if err := f.useGas(1); err != nil {
			return nil, false, err
		}
		f.pc++
		return nil, false, nil

	case RETURN, REVERT:
		off, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		size, err := f.pop()
		if err != nil {
			return nil, false, err
		}
		if err := f.extendMem(off, size); err != nil {
			return nil, false, err
		}
		out := append([]byte(nil), f.memSlice(off.Uint64(), size.Uint64())...)
		if op == REVERT {
			return nil, false, fmt.Errorf("%w: %x", ErrRevert, out)
		}
		return out, true, nil

	case CALL:
		return nil, false, e.opCall(f)

	default:
		handled, err := e.stepExtended(f, op)
		if err != nil {
			return nil, false, err
		}
		if handled {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("%w: 0x%02x at pc %d", ErrInvalidOpcode, byte(op), f.pc)
	}
}

// opCall implements CALL: gas, to, value, inOff, inSize, outOff, outSize.
func (e *EVM) opCall(f *frame) error {
	args := make([]*big.Int, 7)
	for i := range args {
		v, err := f.pop()
		if err != nil {
			return err
		}
		args[i] = v
	}
	gasArg, toArg, valueArg := args[0], args[1], args[2]
	inOff, inSize, outOff, outSize := args[3], args[4], args[5], args[6]

	if err := f.useGas(GasCall); err != nil {
		return err
	}
	if err := f.extendMem(inOff, inSize); err != nil {
		return err
	}
	if err := f.extendMem(outOff, outSize); err != nil {
		return err
	}
	input := append([]byte(nil), f.memSlice(inOff.Uint64(), inSize.Uint64())...)

	transfersValue := valueArg.Sign() != 0
	if transfersValue {
		if err := f.useGas(GasCallValue); err != nil {
			return err
		}
	}
	// EIP-150 style 63/64 retention keeps runaway recursion bounded.
	maxForward := f.gas - f.gas/64
	callGas := maxForward
	if gasArg.IsUint64() && gasArg.Uint64() < maxForward {
		callGas = gasArg.Uint64()
	}
	if err := f.useGas(callGas); err != nil {
		return err
	}
	if transfersValue {
		callGas += CallStipend
	}

	to := types.BytesToAddress(toArg.Bytes())
	ret, left, err := e.Call(f.address, to, input, valueArg, callGas)
	f.gas += left
	f.returnData = append([]byte(nil), ret...)

	success := err == nil
	if success && outSize.Uint64() > 0 {
		dst := f.memSlice(outOff.Uint64(), outSize.Uint64())
		n := copy(dst, ret)
		for i := n; i < len(dst); i++ {
			dst[i] = 0
		}
	}
	if err := f.push(boolToBig(success)); err != nil {
		return err
	}
	f.pc++
	return nil
}

func boolToBig(b bool) *big.Int {
	if b {
		return big.NewInt(1)
	}
	return new(big.Int)
}

// errorsIsRevert reports whether err is (or wraps) ErrRevert.
func errorsIsRevert(err error) bool { return errors.Is(err, ErrRevert) }
