package evm

import (
	"fmt"
	"math/big"

	"forkwatch/internal/types"
)

// Asm is a tiny programmatic EVM assembler with label fixups. The example
// contracts (a DAO-like vault with a reentrancy bug, token ledgers) are
// written with it, which keeps their bytecode readable and auditable in
// tests.
//
// Labels are resolved to absolute PUSH2 destinations in a second pass, so
// forward references work:
//
//	a := NewAsm()
//	a.Push(0).Op(CALLDATALOAD)
//	a.JumpI("withdraw")
//	...
//	a.Label("withdraw").Op(JUMPDEST)
type Asm struct {
	code   []byte
	labels map[string]int
	fixups []fixup
	err    error
}

type fixup struct {
	pos   int // offset of the 2-byte destination inside code
	label string
}

// NewAsm returns an empty assembler.
func NewAsm() *Asm {
	return &Asm{labels: make(map[string]int)}
}

// Op appends raw opcodes.
func (a *Asm) Op(ops ...OpCode) *Asm {
	for _, op := range ops {
		a.code = append(a.code, byte(op))
	}
	return a
}

// Push appends the shortest PUSH for v.
func (a *Asm) Push(v uint64) *Asm {
	return a.PushBig(new(big.Int).SetUint64(v))
}

// PushBig appends the shortest PUSH for a non-negative big integer.
func (a *Asm) PushBig(v *big.Int) *Asm {
	if v.Sign() < 0 {
		a.fail(fmt.Errorf("asm: cannot push negative value %v", v))
		return a
	}
	b := v.Bytes()
	if len(b) == 0 {
		b = []byte{0}
	}
	return a.PushBytes(b)
}

// PushBytes appends PUSHn for 1..32 bytes of immediate data.
func (a *Asm) PushBytes(b []byte) *Asm {
	if len(b) == 0 || len(b) > 32 {
		a.fail(fmt.Errorf("asm: push of %d bytes", len(b)))
		return a
	}
	a.code = append(a.code, byte(PUSH1)+byte(len(b)-1))
	a.code = append(a.code, b...)
	return a
}

// PushAddr pushes a 20-byte address.
func (a *Asm) PushAddr(addr types.Address) *Asm { return a.PushBytes(addr.Bytes()) }

// PushHash pushes a 32-byte hash.
func (a *Asm) PushHash(h types.Hash) *Asm { return a.PushBytes(h.Bytes()) }

// Label binds name to the current position and emits a JUMPDEST.
func (a *Asm) Label(name string) *Asm {
	if _, dup := a.labels[name]; dup {
		a.fail(fmt.Errorf("asm: duplicate label %q", name))
		return a
	}
	a.labels[name] = len(a.code)
	a.code = append(a.code, byte(JUMPDEST))
	return a
}

// PushLabel pushes the (fixed-up) absolute position of a label.
func (a *Asm) PushLabel(name string) *Asm {
	a.code = append(a.code, byte(PUSH1)+1) // PUSH2
	a.fixups = append(a.fixups, fixup{pos: len(a.code), label: name})
	a.code = append(a.code, 0, 0)
	return a
}

// Jump emits an unconditional jump to the label.
func (a *Asm) Jump(name string) *Asm {
	return a.PushLabel(name).Op(JUMP)
}

// JumpI emits a conditional jump to the label, consuming the condition on
// the stack.
func (a *Asm) JumpI(name string) *Asm {
	// Stack on entry: [cond]; PUSH2 dest leaves [cond, dest]; JUMPI pops
	// dest then cond.
	a.code = append(a.code, byte(PUSH1)+1)
	a.fixups = append(a.fixups, fixup{pos: len(a.code), label: name})
	a.code = append(a.code, 0, 0)
	return a.Op(JUMPI)
}

// Assemble resolves labels and returns the bytecode.
func (a *Asm) Assemble() ([]byte, error) {
	if a.err != nil {
		return nil, a.err
	}
	out := append([]byte(nil), a.code...)
	for _, fx := range a.fixups {
		dest, ok := a.labels[fx.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", fx.label)
		}
		if dest > 0xffff {
			return nil, fmt.Errorf("asm: label %q out of PUSH2 range", fx.label)
		}
		out[fx.pos] = byte(dest >> 8)
		out[fx.pos+1] = byte(dest)
	}
	return out, nil
}

// MustAssemble is Assemble panicking on error; for tests and examples.
func (a *Asm) MustAssemble() []byte {
	code, err := a.Assemble()
	if err != nil {
		panic(err)
	}
	return code
}

func (a *Asm) fail(err error) {
	if a.err == nil {
		a.err = err
	}
}
