package metrics

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("reqs")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("reqs") != c {
		t.Fatal("counter lookup did not return the same instrument")
	}
	g := r.Gauge("depth")
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	h := NewHistogram()
	// 1000 observations at ~1ms, 10 at ~100ms: p50 lands near 1ms, p99
	// within the 1ms bucket too (990/1010 > 0.99... actually 1000/1010 =
	// 0.9901), and the max tail is captured by Quantile(1).
	for i := 0; i < 1000; i++ {
		h.Observe(0.001)
	}
	for i := 0; i < 10; i++ {
		h.Observe(0.1)
	}
	if got := h.Count(); got != 1010 {
		t.Fatalf("count = %d, want 1010", got)
	}
	p50 := h.Quantile(0.5)
	if p50 <= 0 || p50 > 0.004 {
		t.Fatalf("p50 = %v, want ~1ms", p50)
	}
	p999 := h.Quantile(0.999)
	if p999 < 0.05 || p999 > 0.3 {
		t.Fatalf("p99.9 = %v, want ~100ms", p999)
	}
	if mean := h.Mean(); mean < 0.001 || mean > 0.01 {
		t.Fatalf("mean = %v", mean)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	h := NewHistogram()
	h.Observe(-1) // dropped
	if h.Count() != 0 || h.Quantile(0.99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestSnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Gauge("b").Set(-1)
	r.Histogram("lat").Observe(0.002)
	r.GaugeFunc("fn", func() float64 { return 42 })

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if m["a"].(float64) != 2 || m["b"].(float64) != -1 || m["fn"].(float64) != 42 {
		t.Fatalf("snapshot values wrong: %v", m)
	}
	lat := m["lat"].(map[string]any)
	if lat["count"].(float64) != 1 {
		t.Fatalf("histogram snapshot wrong: %v", lat)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("c").Inc()
				r.Histogram("h").Observe(0.001)
				r.Gauge("g").Add(1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("c").Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	if got := r.Histogram("h").Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
}

// TestHistogramSnapshotUnderConcurrentWriters takes snapshots WHILE
// writers observe, and requires every snapshot to be internally
// consistent: counts never exceed what has been written, quantiles stay
// ordered, and the mean stays inside the observed value range. Run with
// -race; the snapshot path must never tear.
func TestHistogramSnapshotUnderConcurrentWriters(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const perWriter = 5000
	const lo, hi = 0.0005, 0.2

	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h := r.Histogram("lat")
			for j := 0; j < perWriter; j++ {
				// Alternate the two extremes so quantile ordering is
				// exercised across buckets, not within one.
				if (i+j)%2 == 0 {
					h.Observe(lo)
				} else {
					h.Observe(hi)
				}
			}
		}(i)
	}
	stop := make(chan struct{})
	go func() { wg.Wait(); close(stop) }()

	// Snapshot continuously on this goroutine until the writers finish;
	// the final iteration snapshots once more after the join.
	for alive := true; alive; {
		select {
		case <-stop:
			alive = false
		default:
		}
		snap := r.Histogram("lat").Snapshot()
		if snap.Count > writers*perWriter {
			t.Fatalf("count %d exceeds writes issued", snap.Count)
		}
		if snap.P50 > snap.P90 || snap.P90 > snap.P99 {
			t.Fatalf("quantiles unordered mid-write: %+v", snap)
		}
		if snap.Count > 0 && (snap.Mean <= 0 || snap.Mean > 2*hi) {
			t.Fatalf("mean %v outside observed range", snap.Mean)
		}
		// The registry-level snapshot must carry the same histogram
		// without racing either.
		if _, ok := r.Snapshot()["lat"].(HistogramSnapshot); !ok {
			t.Fatal("registry snapshot lost the histogram")
		}
	}

	final := r.Histogram("lat").Snapshot()
	if final.Count != writers*perWriter {
		t.Fatalf("final count = %d, want %d", final.Count, writers*perWriter)
	}
	if final.P50 >= final.P99 {
		t.Fatalf("bimodal load should spread quantiles: %+v", final)
	}
}
