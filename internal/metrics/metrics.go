// Package metrics is a dependency-free instrumentation registry:
// counters, gauges and latency histograms backed by atomics, named once
// and shared by every hot path that wants to count something.
//
// The serving layer (internal/rpc) threads a Registry through its worker
// pool, caches and rate limiters and surfaces a JSON snapshot at
// /debug/metrics, alongside the storage layer's db.Stats counters —
// the operational window a measurement pipeline at the paper's scale
// ("export every block and transaction to a database") needs once it
// serves queries instead of only ingesting.
//
// All types are safe for concurrent use. Updates are single atomic
// operations; snapshots are read-only and may lag concurrent updates by
// design.
package metrics

import (
	"encoding/json"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing count.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (queue depth, open conns).
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// defBounds are the default histogram bucket upper bounds in seconds:
// exponential from 50µs to ~26s, sized for request latencies.
var defBounds = func() []float64 {
	b := make([]float64, 0, 20)
	for v := 50e-6; v < 30; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// Histogram accumulates observations into fixed exponential buckets and
// estimates quantiles by linear interpolation inside the landing bucket.
type Histogram struct {
	bounds []float64       // upper bound of bucket i; last bucket is +inf
	counts []atomic.Uint64 // len(bounds)+1
	count  atomic.Uint64
	sumNS  atomic.Uint64 // sum of observations, nanoseconds
}

// NewHistogram returns a histogram over the default latency buckets.
func NewHistogram() *Histogram {
	return &Histogram{bounds: defBounds, counts: make([]atomic.Uint64, len(defBounds)+1)}
}

// Observe records one observation in seconds.
func (h *Histogram) Observe(seconds float64) {
	if seconds < 0 || math.IsNaN(seconds) {
		return
	}
	i := sort.SearchFloat64s(h.bounds, seconds)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(uint64(seconds * 1e9))
}

// ObserveSince records the elapsed time since start.
func (h *Histogram) ObserveSince(start time.Time) {
	h.Observe(time.Since(start).Seconds())
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Mean returns the mean observation in seconds (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sumNS.Load()) / 1e9 / float64(n)
}

// Quantile estimates the q-th quantile (0 < q <= 1) in seconds. The
// estimate interpolates linearly within the landing bucket; observations
// past the last bound report that bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= rank {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			if c == 0 {
				return hi
			}
			return lo + (hi-lo)*((rank-cum)/c)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// HistogramSnapshot is the exported view of one histogram.
type HistogramSnapshot struct {
	Count uint64  `json:"count"`
	Mean  float64 `json:"mean_s"`
	P50   float64 `json:"p50_s"`
	P90   float64 `json:"p90_s"`
	P99   float64 `json:"p99_s"`
}

// Snapshot returns the histogram's exported view.
func (h *Histogram) Snapshot() HistogramSnapshot {
	return HistogramSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P90:   h.Quantile(0.90),
		P99:   h.Quantile(0.99),
	}
}

// Registry names and owns a process's metrics. Lookups create on first
// use, so call sites just ask for the name they want; a name is bound to
// one kind for the registry's lifetime (asking for an existing name with
// a different kind returns a fresh unregistered instrument rather than
// panicking on a hot path).
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram()
	r.hists[name] = h
	return h
}

// GaugeFunc registers a callback sampled at snapshot time (e.g. a
// db.Stats field read from the storage layer). Re-registering a name
// replaces the callback.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Snapshot returns every metric's current value keyed by name. Counter
// and gauge values are numbers; histograms are HistogramSnapshot objects;
// gauge funcs are sampled during the call.
//
// Gauge-func callbacks are sampled AFTER the registry lock is released:
// callbacks reach into other subsystems (chain heads, sync trackers,
// storage stats) that take their own locks, and sampling them under the
// registry lock would let one slow or deadlocked callback wedge every
// metric lookup in the process. A func registered under the same name as
// a plain metric wins, so subsystems can upgrade a pre-registered static
// default (e.g. the serving layer's zeroed replica gauges) to a live
// source.
func (r *Registry) Snapshot() map[string]any {
	r.mu.RLock()
	out := make(map[string]any, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	funcs := make(map[string]func() float64, len(r.funcs))
	for name, fn := range r.funcs {
		funcs[name] = fn
	}
	r.mu.RUnlock()
	for name, fn := range funcs {
		out[name] = fn()
	}
	return out
}

// WriteJSON writes the snapshot as indented JSON with sorted keys (the
// /debug/metrics payload).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
