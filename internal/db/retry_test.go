package db

import (
	"context"
	"errors"
	"testing"
	"time"
)

// flakyKV fails every operation with a transient error until the budget
// runs out, then delegates to an inner MemDB.
type flakyKV struct {
	inner    KV
	failures int // transient failures still to inject
	calls    int // operations attempted (including failed ones)
}

type stubTransient struct{}

func (stubTransient) Error() string   { return "stub: transient" }
func (stubTransient) Transient() bool { return true }

func (f *flakyKV) fail() bool {
	f.calls++
	if f.failures != 0 {
		if f.failures > 0 {
			f.failures--
		}
		return true
	}
	return false
}

func (f *flakyKV) Get(key []byte) ([]byte, bool, error) {
	if f.fail() {
		return nil, false, stubTransient{}
	}
	return f.inner.Get(key)
}
func (f *flakyKV) Put(key, value []byte) error {
	if f.fail() {
		return stubTransient{}
	}
	return f.inner.Put(key, value)
}
func (f *flakyKV) Has(key []byte) (bool, error) {
	if f.fail() {
		return false, stubTransient{}
	}
	return f.inner.Has(key)
}
func (f *flakyKV) Delete(key []byte) error {
	if f.fail() {
		return stubTransient{}
	}
	return f.inner.Delete(key)
}
func (f *flakyKV) NewBatch() Batch { return f.inner.NewBatch() }
func (f *flakyKV) Stats() Stats    { return f.inner.Stats() }

// TestRetryAbsorbsBoundedFaults: the historical contract — NewRetry with
// no policy sleeps never, retries transient errors up to the budget, and
// surfaces the fault when the budget is spent.
func TestRetryAbsorbsBoundedFaults(t *testing.T) {
	f := &flakyKV{inner: NewMemDB(), failures: 3}
	r := NewRetry(f, 4)
	if err := r.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("Put with 3 faults under 4 attempts: %v", err)
	}
	if f.calls != 4 {
		t.Fatalf("attempts = %d, want 4", f.calls)
	}

	f.failures = 4
	f.calls = 0
	err := r.Put([]byte("k"), []byte("v2"))
	if !IsTransient(err) {
		t.Fatalf("exhausted budget returned %v, want the transient fault", err)
	}
	if f.calls != 4 {
		t.Fatalf("attempts = %d, want 4 (budget)", f.calls)
	}
}

// TestRetryRespectsContextDeadline: a deadline-bounded view must stop
// retrying the moment the context expires — mid-backoff — and surface
// both the storage fault and the context error (PR 6 satellite).
func TestRetryRespectsContextDeadline(t *testing.T) {
	f := &flakyKV{inner: NewMemDB(), failures: -1} // never stops failing
	r := NewRetryPolicy(f, RetryPolicy{
		Attempts:  1 << 20,
		BaseDelay: 5 * time.Millisecond,
	})

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := r.WithContext(ctx).Put([]byte("k"), []byte("v"))
	elapsed := time.Since(start)

	if err == nil {
		t.Fatal("Put against an always-failing store succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v does not carry the context deadline", err)
	}
	var st stubTransient
	if !errors.As(err, &st) {
		t.Fatalf("error %v does not carry the storage fault", err)
	}
	// The deadline was 30ms; a run that ignored it would sleep through
	// 2^20 backoffs. Allow generous scheduler slack.
	if elapsed > time.Second {
		t.Fatalf("retry loop ran %v past a 30ms deadline", elapsed)
	}
	if f.calls >= 1<<19 {
		t.Fatalf("loop burned %d attempts; the deadline did not stop it", f.calls)
	}

	// An already-expired context refuses before the first attempt.
	f.calls = 0
	if err := r.WithContext(ctx).Put([]byte("k"), []byte("v")); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired context: %v", err)
	}
	if f.calls != 0 {
		t.Fatalf("expired context still attempted %d operations", f.calls)
	}
}

// TestRetryRespectsContextCancel: explicit cancellation — not a deadline
// — must interrupt the retry loop mid-backoff while the store is
// stalled. The policy's backoff is an hour long, modelling a stalled
// device whose next attempt is far away: the caller hanging up must pull
// the operation out of that sleep immediately, carrying both the context
// error and the storage fault (PR 8 satellite; deadline expiry is
// covered above).
func TestRetryRespectsContextCancel(t *testing.T) {
	f := &flakyKV{inner: NewMemDB(), failures: -1} // injected stall: never recovers
	r := NewRetryPolicy(f, RetryPolicy{
		Attempts:  1 << 20,
		BaseDelay: time.Hour,
	})

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- r.WithContext(ctx).Put([]byte("k"), []byte("v")) }()
	time.Sleep(20 * time.Millisecond) // let the loop fail once and enter the backoff sleep
	start := time.Now()
	cancel()

	var err error
	select {
	case err = <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("cancellation did not interrupt the hour-long backoff sleep")
	}
	if wait := time.Since(start); wait > time.Second {
		t.Fatalf("Put returned %v after cancel; the backoff sleep was not interrupted", wait)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not carry the cancellation", err)
	}
	var st stubTransient
	if !errors.As(err, &st) {
		t.Fatalf("error %v does not carry the storage fault", err)
	}
	if f.calls > 1 {
		t.Fatalf("loop burned %d attempts; cancellation should stop it inside the first backoff", f.calls)
	}

	// An already-cancelled context refuses before the first attempt.
	f.calls = 0
	if err := r.WithContext(ctx).Put([]byte("k"), []byte("v")); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled context: %v", err)
	}
	if f.calls != 0 {
		t.Fatalf("cancelled context still attempted %d operations", f.calls)
	}
}

// TestRetryMaxElapsed: the wall-clock cap ends the loop even when the
// attempt budget has room, without entering a sleep that would cross it.
func TestRetryMaxElapsed(t *testing.T) {
	f := &flakyKV{inner: NewMemDB(), failures: -1}
	r := NewRetryPolicy(f, RetryPolicy{
		Attempts:   1 << 20,
		BaseDelay:  time.Millisecond,
		MaxDelay:   time.Millisecond,
		MaxElapsed: 10 * time.Millisecond,
	})
	// Drive the clock by hand so the test is exact: every sleep advances
	// fake time by the requested amount.
	now := time.Unix(0, 0)
	r.now = func() time.Time { return now }
	r.sleep = func(d time.Duration) { now = now.Add(d) }

	err := r.Put([]byte("k"), []byte("v"))
	if !IsTransient(err) {
		t.Fatalf("want the last transient fault, got %v", err)
	}
	// Jittered 1ms sleeps land in [0.5ms, 1ms), so the 10ms budget admits
	// at most 21 attempts and the cap must have fired well before the
	// 2^20 attempt budget.
	if f.calls < 2 || f.calls > 30 {
		t.Fatalf("attempts = %d, want a handful bounded by MaxElapsed", f.calls)
	}
	if since := now.Sub(time.Unix(0, 0)); since > 11*time.Millisecond {
		t.Fatalf("slept %v, past the 10ms cap", since)
	}
}

// TestRetryJitterDeterministic: equal seeds draw equal backoff sequences
// (chaos runs must replay), different seeds decorrelate.
func TestRetryJitterDeterministic(t *testing.T) {
	sleeps := func(seed int64) []time.Duration {
		f := &flakyKV{inner: NewMemDB(), failures: -1}
		r := NewRetryPolicy(f, RetryPolicy{
			Attempts:   8,
			BaseDelay:  time.Millisecond,
			JitterSeed: seed,
		})
		var got []time.Duration
		r.sleep = func(d time.Duration) { got = append(got, d) }
		r.Put([]byte("k"), []byte("v"))
		return got
	}
	a, b, c := sleeps(1), sleeps(1), sleeps(2)
	if len(a) != 7 {
		t.Fatalf("8 attempts slept %d times, want 7", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("equal seeds diverge at sleep %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] < time.Millisecond<<i/2 || a[i] >= time.Millisecond<<i {
			t.Fatalf("sleep %d = %v outside jitter band [%v, %v)", i, a[i], time.Millisecond<<i/2, time.Millisecond<<i)
		}
	}
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different jitter seeds produced identical backoff sequences")
	}
}
