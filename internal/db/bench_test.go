package db

import (
	"encoding/binary"
	"testing"
)

// benchKeys returns n distinct 32-byte (hash-shaped) keys.
func benchKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		k := make([]byte, 32)
		binary.BigEndian.PutUint64(k, uint64(i)*0x9e3779b97f4a7c15)
		keys[i] = k
	}
	return keys
}

// BenchmarkKVBatchWrite measures committing a trie-commit-sized batch
// (256 nodes of ~100 bytes) into the sharded store.
func BenchmarkKVBatchWrite(b *testing.B) {
	kv := NewMemDB()
	keys := benchKeys(256)
	val := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := kv.NewBatch()
		for _, k := range keys {
			batch.Put(k, val)
		}
		batch.Write()
	}
}

// BenchmarkKVPut measures unbatched single writes for comparison.
func BenchmarkKVPut(b *testing.B) {
	kv := NewMemDB()
	keys := benchKeys(256)
	val := make([]byte, 100)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.Put(keys[i%len(keys)], val)
	}
}

// BenchmarkKVGet measures reads from the sharded store.
func BenchmarkKVGet(b *testing.B) {
	kv := NewMemDB()
	keys := benchKeys(1024)
	val := make([]byte, 100)
	for _, k := range keys {
		kv.Put(k, val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		kv.Get(keys[i%len(keys)])
	}
}

// BenchmarkCacheGetHot measures reads served entirely from the LRU.
func BenchmarkCacheGetHot(b *testing.B) {
	c := NewCache(NewMemDB(), 2048)
	keys := benchKeys(1024)
	val := make([]byte, 100)
	for _, k := range keys {
		c.Put(k, val)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(keys[i%len(keys)])
	}
	b.StopTimer()
	if s := c.Stats(); s.HitRate() < 0.99 {
		b.Fatalf("expected hot cache, hit rate %.2f", s.HitRate())
	}
}
