package db

import (
	"sync"
	"sync/atomic"
)

// Coalescer is a write-coalescing overlay over a KV: Put/Delete and batch
// Writes land in an in-memory overlay that reads consult first, and Flush
// pushes everything accumulated since the last flush into the inner store
// through one atomic batch. Layered under a full-fidelity ledger it turns
// the per-block state commits of a simulated day into a single backend
// write, which is where the disk backend's fsync and record-framing costs
// live.
//
// The trade is durability granularity: between flushes the inner store is
// one coherent-but-stale snapshot, so the engine only installs a Coalescer
// when the scenario injects no storage faults and schedules no crashes —
// crash recovery (recoverMine) depends on per-block durability.
//
// All methods are safe for concurrent use. Values put into the overlay are
// aliased, not copied, matching the batch contract ("retained until
// Write").
type Coalescer struct {
	inner KV

	mu  sync.RWMutex
	ops []batchOp      // insertion-ordered pending writes
	idx map[string]int // key -> position in ops (rewritten in place)

	// overlayReads counts Gets served by the overlay; Stats reports them
	// as reads and hits so coalescing doesn't hide traffic from the
	// cache-efficiency counters the figure pipelines assert on.
	overlayReads atomic.Uint64
}

// NewCoalescer wraps inner in a write-coalescing overlay.
func NewCoalescer(inner KV) *Coalescer {
	return &Coalescer{inner: inner, idx: make(map[string]int)}
}

// Get implements KV, consulting the overlay before the inner store.
func (c *Coalescer) Get(key []byte) ([]byte, bool, error) {
	c.mu.RLock()
	i, ok := c.idx[string(key)]
	if ok {
		op := c.ops[i]
		c.mu.RUnlock()
		c.overlayReads.Add(1)
		if op.del {
			return nil, false, nil
		}
		return op.value, true, nil
	}
	c.mu.RUnlock()
	return c.inner.Get(key)
}

// Has implements KV.
func (c *Coalescer) Has(key []byte) (bool, error) {
	c.mu.RLock()
	i, ok := c.idx[string(key)]
	if ok {
		del := c.ops[i].del
		c.mu.RUnlock()
		return !del, nil
	}
	c.mu.RUnlock()
	return c.inner.Has(key)
}

// Put implements KV; the write is deferred until the next Flush.
func (c *Coalescer) Put(key, value []byte) error {
	c.mu.Lock()
	c.stage(batchOp{key: string(key), value: value})
	c.mu.Unlock()
	return nil
}

// Delete implements KV; the removal is deferred until the next Flush.
func (c *Coalescer) Delete(key []byte) error {
	c.mu.Lock()
	c.stage(batchOp{key: string(key), del: true})
	c.mu.Unlock()
	return nil
}

// stage records one operation, overwriting any pending op on the same key
// in place so the overlay stays last-write-wins. Callers hold c.mu.
func (c *Coalescer) stage(op batchOp) {
	if i, ok := c.idx[op.key]; ok {
		c.ops[i] = op
		return
	}
	c.idx[op.key] = len(c.ops)
	c.ops = append(c.ops, op)
}

// NewBatch implements KV. Write moves the batch's operations into the
// overlay atomically; nothing reaches the inner store until Flush.
func (c *Coalescer) NewBatch() Batch {
	return &coalesceBatch{c: c}
}

// Pending reports how many distinct keys are staged for the next Flush.
func (c *Coalescer) Pending() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.ops)
}

// Flush applies every staged operation to the inner store as one atomic
// batch and empties the overlay. A flush error leaves the overlay intact
// (the inner batch is atomic), so the caller may retry or abort with the
// pending state still readable.
func (c *Coalescer) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.ops) == 0 {
		return nil
	}
	batch := c.inner.NewBatch()
	for _, op := range c.ops {
		if op.del {
			batch.Delete([]byte(op.key))
		} else {
			batch.Put([]byte(op.key), op.value)
		}
	}
	if err := batch.Write(); err != nil {
		return err
	}
	c.ops = c.ops[:0]
	clear(c.idx)
	return nil
}

// Stats implements KV: the inner store's counters plus the overlay-served
// reads (reported as read+hit, like a cache layer).
func (c *Coalescer) Stats() Stats {
	s := c.inner.Stats()
	o := c.overlayReads.Load()
	s.Reads += o
	s.Hits += o
	return s
}

// coalesceBatch tightens the Batch contract: values are retained past
// Write, until the Coalescer's next successful Flush. Callers that encode
// into reusable buffers must copy before Put when a Coalescer may sit in
// the stack (no current writer does either).
type coalesceBatch struct {
	c    *Coalescer
	ops  []batchOp
	size int
}

func (b *coalesceBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), value: value})
	b.size += len(value)
}

func (b *coalesceBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), del: true})
}

func (b *coalesceBatch) Len() int       { return len(b.ops) }
func (b *coalesceBatch) ValueSize() int { return b.size }

func (b *coalesceBatch) Write() error {
	c := b.c
	c.mu.Lock()
	for _, op := range b.ops {
		c.stage(op)
	}
	c.mu.Unlock()
	b.Reset()
	return nil
}

func (b *coalesceBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}
