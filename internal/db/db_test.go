package db

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// backends under test: every KV implementation must satisfy the same
// contract (the ephemeral store is exercised single-goroutine only).
func backends() map[string]func() KV {
	return map[string]func() KV{
		"mem":     func() KV { return NewMemDB() },
		"mem1":    func() KV { return NewMemDBShards(1) },
		"cached":  func() KV { return NewCache(NewMemDB(), 1024) },
		"cachedS": func() KV { return NewCache(NewMemDB(), 4) }, // tiny: forces eviction
	}
}

func TestKVBasicOps(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			kv := mk()
			if _, ok, _ := kv.Get([]byte("absent")); ok {
				t.Error("Get on empty store returned ok")
			}
			kv.Put([]byte("k1"), []byte("v1"))
			kv.Put([]byte("k2"), []byte("v2"))
			if v, ok, _ := kv.Get([]byte("k1")); !ok || !bytes.Equal(v, []byte("v1")) {
				t.Errorf("Get k1 = %q, %v", v, ok)
			}
			if ok, _ := kv.Has([]byte("k2")); !ok {
				t.Error("Has k2 = false")
			}
			kv.Put([]byte("k1"), []byte("v1b")) // overwrite
			if v, _, _ := kv.Get([]byte("k1")); !bytes.Equal(v, []byte("v1b")) {
				t.Errorf("overwrite lost: %q", v)
			}
			kv.Delete([]byte("k2"))
			if ok, _ := kv.Has([]byte("k2")); ok {
				t.Error("Has after Delete = true")
			}
			kv.Delete([]byte("never-existed")) // no-op must not panic
		})
	}
}

func TestKVBatchAppliesAtomically(t *testing.T) {
	for name, mk := range backends() {
		t.Run(name, func(t *testing.T) {
			kv := mk()
			kv.Put([]byte("stale"), []byte("x"))
			b := kv.NewBatch()
			for i := 0; i < 100; i++ {
				b.Put([]byte(fmt.Sprintf("key%03d", i)), []byte(fmt.Sprintf("val%03d", i)))
			}
			b.Delete([]byte("stale"))
			// A later Put of the same key must win over an earlier one.
			b.Put([]byte("key000"), []byte("winner"))
			if b.Len() != 102 {
				t.Errorf("Len = %d, want 102", b.Len())
			}
			// Nothing visible before Write.
			if ok, _ := kv.Has([]byte("key050")); ok {
				t.Error("batched key visible before Write")
			}
			b.Write()
			for i := 1; i < 100; i++ {
				want := []byte(fmt.Sprintf("val%03d", i))
				if v, ok, _ := kv.Get([]byte(fmt.Sprintf("key%03d", i))); !ok || !bytes.Equal(v, want) {
					t.Fatalf("key%03d = %q, %v", i, v, ok)
				}
			}
			if v, _, _ := kv.Get([]byte("key000")); !bytes.Equal(v, []byte("winner")) {
				t.Errorf("in-batch overwrite order violated: %q", v)
			}
			if ok, _ := kv.Has([]byte("stale")); ok {
				t.Error("batched delete not applied")
			}
			if b.Len() != 0 {
				t.Errorf("batch not reset after Write: Len = %d", b.Len())
			}
		})
	}
}

func TestMemDBStatsCounters(t *testing.T) {
	kv := NewMemDB()
	kv.Put([]byte("a"), []byte("1"))
	kv.Get([]byte("a"))      // hit
	kv.Get([]byte("absent")) // miss
	kv.Delete([]byte("a"))
	s := kv.Stats()
	if s.Writes != 1 || s.Reads != 2 || s.Hits != 1 || s.Misses != 1 || s.Deletes != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Entries != 0 {
		t.Errorf("Entries = %d, want 0", s.Entries)
	}
	if got := s.HitRate(); got != 0.5 {
		t.Errorf("HitRate = %v, want 0.5", got)
	}
}

func TestCacheWriteThroughAndEviction(t *testing.T) {
	back := NewMemDB()
	c := NewCache(back, 2)
	c.Put([]byte("a"), []byte("1"))
	c.Put([]byte("b"), []byte("2"))
	c.Put([]byte("c"), []byte("3")) // evicts a from the cache, not the backend

	if s := c.Stats(); s.Entries != 2 {
		t.Errorf("cache entries = %d, want 2", s.Entries)
	}
	if v, ok, _ := back.Get([]byte("a")); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatal("write-through lost evicted key in backend")
	}
	// Reading the evicted key misses the cache, hits the backend, and
	// re-populates.
	pre := c.Stats()
	if v, ok, _ := c.Get([]byte("a")); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatal("Get through cache failed")
	}
	post := c.Stats()
	if post.Misses != pre.Misses+1 {
		t.Errorf("expected one miss, stats %+v -> %+v", pre, post)
	}
	if v, ok, _ := c.Get([]byte("a")); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatal("re-read failed")
	}
	if s := c.Stats(); s.Hits != post.Hits+1 {
		t.Errorf("expected repopulated hit, stats %+v", s)
	}
}

func TestCacheBatchWarmsCache(t *testing.T) {
	c := NewCache(NewMemDB(), 64)
	b := c.NewBatch()
	b.Put([]byte("n1"), []byte("x"))
	b.Write()
	pre := c.Stats()
	if v, ok, _ := c.Get([]byte("n1")); !ok || !bytes.Equal(v, []byte("x")) {
		t.Fatal("batched key unreadable")
	}
	if s := c.Stats(); s.Hits != pre.Hits+1 {
		t.Errorf("batch did not warm cache: %+v", s)
	}
}

func TestCacheDeleteEvicts(t *testing.T) {
	c := NewCache(NewMemDB(), 8)
	c.Put([]byte("k"), []byte("v"))
	c.Delete([]byte("k"))
	if ok, _ := c.Has([]byte("k")); ok {
		t.Error("deleted key still visible")
	}
	if _, ok, _ := c.Get([]byte("k")); ok {
		t.Error("deleted key readable")
	}
}

func TestOpenBackends(t *testing.T) {
	if kv, err := Open(Config{}); err != nil || kv == nil {
		t.Fatalf("zero config: %v", err)
	}
	if kv, err := Open(Config{Backend: BackendCached, CacheEntries: 10}); err != nil {
		t.Fatalf("cached: %v", err)
	} else if _, ok := kv.(*Cache); !ok {
		t.Fatalf("cached backend is %T", kv)
	}
	if _, err := Open(Config{Backend: "flux-capacitor"}); err == nil {
		t.Fatal("unknown backend accepted")
	}
}

// TestConfigValidation pins down the field combinations Open must reject
// with a descriptive error instead of silently ignoring (PR 6 satellite):
// every case names the offending field so a misconfigured run fails loud
// at startup, not after a day of simulation wrote nowhere.
func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  Config
		want string // substring the error must carry
	}{
		{"mem with datadir", Config{DataDir: "/tmp/x"}, "DataDir"},
		{"explicit mem with datadir", Config{Backend: BackendMem, DataDir: "/tmp/x"}, "DataDir"},
		{"mem with cache entries", Config{CacheEntries: 64}, "CacheEntries"},
		{"cached with datadir", Config{Backend: BackendCached, DataDir: "/tmp/x"}, "DataDir"},
		{"disk without datadir", Config{Backend: BackendDisk}, "DataDir"},
		{"disk with shards", Config{Backend: BackendDisk, DataDir: "/tmp/x", Shards: 4}, "Shards"},
		{"disk with cache entries", Config{Backend: BackendDisk, DataDir: "/tmp/x", CacheEntries: 64}, "CacheEntries"},
		{"unknown backend", Config{Backend: "flux-capacitor"}, "flux-capacitor"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("Validate(%+v) accepted an invalid config", tc.cfg)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Validate(%+v) = %q, want mention of %q", tc.cfg, err, tc.want)
			}
			if _, oerr := Open(tc.cfg); oerr == nil {
				t.Fatalf("Open(%+v) accepted what Validate rejected", tc.cfg)
			}
		})
	}

	// The valid shapes must stay valid.
	for _, cfg := range []Config{
		{},
		{Backend: BackendMem, Shards: 8},
		{Backend: BackendCached, Shards: 8, CacheEntries: 128},
		{Backend: BackendDisk, DataDir: t.TempDir()},
	} {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("Validate(%+v) rejected a valid config: %v", cfg, err)
		}
	}
}

// TestConcurrentAccess is the -race regression test for the default store
// (satellite of ISSUE 2): the old trie.MemDB was documented as shared
// between one committing writer and concurrent p2p readers, so the
// replacement must survive that pattern — plus batch writers — under the
// race detector.
func TestConcurrentAccess(t *testing.T) {
	for name, mk := range map[string]func() KV{
		"mem":    func() KV { return NewMemDB() },
		"cached": func() KV { return NewCache(NewMemDB(), 256) },
	} {
		t.Run(name, func(t *testing.T) {
			kv := mk()
			const (
				writers = 4
				readers = 4
				keys    = 200
			)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < keys; i++ {
						key := []byte(fmt.Sprintf("w%d-k%d", w, i))
						kv.Put(key, []byte{byte(i)})
						if i%3 == 0 {
							b := kv.NewBatch()
							b.Put([]byte(fmt.Sprintf("w%d-b%d", w, i)), []byte{byte(i)})
							b.Delete([]byte(fmt.Sprintf("w%d-k%d", w, i/2)))
							b.Write()
						}
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; i < keys*writers; i++ {
						key := []byte(fmt.Sprintf("w%d-k%d", i%writers, i%keys))
						kv.Get(key)
						kv.Has(key)
						if i%64 == 0 {
							kv.Stats()
						}
					}
				}(r)
			}
			wg.Wait()
			// Sanity: the last key of each writer survived (never deleted:
			// i/2 < keys for every deleted index).
			for w := 0; w < writers; w++ {
				key := []byte(fmt.Sprintf("w%d-k%d", w, keys-1))
				if ok, _ := kv.Has(key); !ok {
					t.Errorf("writer %d's final key missing", w)
				}
			}
		})
	}
}
