// Package diskdb is the log-structured persistent backend behind db.KV:
// append-only segment files of CRC-framed records, an in-memory key →
// file-location index rebuilt by scanning the segments on open, segment
// rotation at a size threshold, and a tombstone + compaction pass that
// rewrites the live set into a fresh segment.
//
// The paper's measurement archive must survive node restarts (§3.1 —
// export everything, then join); this backend is what lets forkserve
// reopen the two simulated chains from disk instead of re-simulating
// them. Crash consistency is the design driver, mirrored from the chain
// WAL's single-commit-point protocol one layer down:
//
//   - A plain Put/Delete is one record, appended and fsynced as a unit.
//   - A Batch commits as one append of staged records followed by a
//     commit record carrying the group's op count. Replay applies a
//     staged group only when its commit record survives intact, so a
//     batch torn anywhere is a batch that never happened.
//   - On open, a torn tail (half-written frame, uncommitted group) is
//     truncated away; a fully-framed record whose checksum fails is
//     skipped; both count into db.Stats.Repairs.
//   - A failed append is repaired by truncating back to the pre-append
//     offset before the (transient) error is returned, so a db.Retry
//     re-append lands on clean framing. If the repair itself fails the
//     store degrades to read-only (db.ErrReadOnly) instead of panicking:
//     reads keep serving the archive while writes report the dead disk.
//
// All I/O goes through the FS seam, which is how the faultfile
// sub-package proves these paths with deterministic injected faults.
package diskdb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"forkwatch/internal/db"
	"forkwatch/internal/db/dbfs"
)

// FS and File alias the dbfs seam: diskdb's whole view of the world.
type (
	FS   = dbfs.FS
	File = dbfs.File
)

// NewOSFS roots a real filesystem at dir (see dbfs.NewOSFS).
func NewOSFS(dir string) (FS, error) { return dbfs.NewOSFS(dir) }

// DefaultSegmentBytes is the rotation threshold when Options.SegmentBytes
// is zero.
const DefaultSegmentBytes = 4 << 20

// Options parameterises a store.
type Options struct {
	// SegmentBytes rotates the active segment once it reaches this size
	// (0 = DefaultSegmentBytes). Records never split across segments; a
	// single oversized record may push a segment past the threshold.
	SegmentBytes int64
}

// errClosed reports use after Close. Not transient.
var errClosed = errors.New("diskdb: store is closed")

// transientErr marks read-path failures worth retrying (injected I/O
// errors pass their own transience through; checksum mismatches are
// transient because read-path bit-rot vanishes on a re-read, and genuine
// at-rest rot simply exhausts the retry budget and surfaces).
type transientErr struct{ err error }

func (e transientErr) Error() string   { return e.err.Error() }
func (e transientErr) Unwrap() error   { return e.err }
func (transientErr) Transient() bool   { return true }

// entry locates a key's newest record.
type entry struct {
	seg  uint64
	off  int64
	flen int32
	del  bool
}

// segment is one open log file.
type segment struct {
	id   uint64
	f    File
	size int64
}

// DB implements db.KV over an FS. Safe for concurrent use: reads share an
// RLock (records are immutable once written), writes serialise.
type DB struct {
	fs   FS
	opts Options

	mu     sync.RWMutex
	segs   map[uint64]*segment
	ids    []uint64 // ascending; replay order
	active *segment
	index  map[string]entry
	live   int   // non-tombstone keys
	dead   int64 // bytes held by superseded or skipped records
	ro     error // non-nil: degraded to read-only; holds the cause
	closed bool

	reads, writes, deletes, hits, misses, repairs atomic.Uint64
}

func init() {
	db.RegisterDiskBackend(func(cfg db.Config) (db.KV, error) {
		fs, err := NewOSFS(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		return Open(fs, Options{})
	})
}

func segName(id uint64) string { return fmt.Sprintf("seg-%06d.log", id) }

func parseSegName(name string) (uint64, bool) {
	var id uint64
	n, err := fmt.Sscanf(name, "seg-%d.log", &id)
	return id, n == 1 && err == nil && id > 0
}

// Open opens (or initialises) a store over fs, replaying every segment to
// rebuild the index and repairing whatever a crash left behind: torn
// tails and uncommitted batch groups are truncated away, checksum-failed
// records are skipped, and every repair is counted in Stats().Repairs.
func Open(fs FS, opts Options) (*DB, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	d := &DB{
		fs:    fs,
		opts:  opts,
		segs:  make(map[uint64]*segment),
		index: make(map[string]entry),
	}
	names, err := fs.List()
	if err != nil {
		return nil, fmt.Errorf("diskdb: listing segments: %w", err)
	}
	var ids []uint64
	for _, name := range names {
		if id, ok := parseSegName(name); ok {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	if len(ids) == 0 {
		ids = []uint64{1}
	}
	for i, id := range ids {
		f, err := fs.Open(segName(id))
		if err != nil {
			d.closeAll()
			return nil, fmt.Errorf("diskdb: opening %s: %w", segName(id), err)
		}
		size, err := f.Size()
		if err != nil {
			f.Close()
			d.closeAll()
			return nil, fmt.Errorf("diskdb: sizing %s: %w", segName(id), err)
		}
		seg := &segment{id: id, f: f, size: size}
		if err := d.scanSegment(seg); err != nil {
			f.Close()
			d.closeAll()
			return nil, err
		}
		d.segs[id] = seg
		d.ids = append(d.ids, id)
		if i == len(ids)-1 {
			d.active = seg
		}
	}
	return d, nil
}

// scanSegment replays one segment into the index, deciding a repair
// action for every way the bytes can be wrong (see package comment).
func (d *DB) scanSegment(seg *segment) error {
	if seg.size == 0 {
		return nil
	}
	buf := make([]byte, seg.size)
	if _, err := seg.f.ReadAt(buf, 0); err != nil {
		return fmt.Errorf("diskdb: scanning %s: %w", segName(seg.id), err)
	}

	type scanOp struct {
		rec  record
		off  int64
		flen int32
	}
	var pending []scanOp // staged group awaiting its commit record
	pendingStart := int64(-1)
	dropPending := func() {
		// An interrupted or commit-less group never happened; callers
		// account its byte span into d.dead before dropping.
		d.repairs.Add(1)
		pending, pendingStart = nil, -1
	}
	truncTo := int64(-1)
	off := int64(0)

scan:
	for off < seg.size {
		rec, n, err := decodeRecord(buf[off:])
		switch {
		case err == nil:
			// handled below
		case errors.Is(err, errFrameTorn), errors.Is(err, errFrameGarbage):
			// Half a frame, or framing lost entirely: nothing past this
			// point is reachable. Truncate — back to the group start if a
			// staged group was in flight.
			truncTo = off
			if pendingStart >= 0 {
				truncTo = pendingStart
			}
			d.repairs.Add(1)
			break scan
		default: // errFrameChecksum, errFramePayload: full frame, bad bytes
			if off+int64(n) == seg.size {
				// A bad final record is a torn append, not at-rest rot:
				// truncate it (and any group it belonged to) away.
				truncTo = off
				if pendingStart >= 0 {
					truncTo = pendingStart
				}
				d.repairs.Add(1)
				break scan
			}
			// Mid-file rot: skip the record, keep replaying. A group the
			// rotted record interrupts is dropped (its commit can no
			// longer be trusted to match).
			if pendingStart >= 0 {
				d.dead += off - pendingStart
				dropPending()
			}
			d.dead += int64(n)
			d.repairs.Add(1)
			off += int64(n)
			continue
		}

		switch rec.kind {
		case recPut, recDel:
			if pendingStart >= 0 { // group interrupted by a plain record
				d.dead += off - pendingStart
				dropPending()
			}
			d.apply(string(rec.key), entry{seg: seg.id, off: off, flen: int32(n), del: rec.kind == recDel})
		case recStagedPut, recStagedDel:
			if pendingStart < 0 {
				pendingStart = off
			}
			pending = append(pending, scanOp{rec: rec, off: off, flen: int32(n)})
		case recCommit:
			if pendingStart < 0 || len(rec.value) != 4 ||
				binary.BigEndian.Uint32(rec.value) != uint32(len(pending)) {
				// Stray commit, or a count that does not match the staged
				// records in front of it: the group cannot be trusted.
				if pendingStart >= 0 {
					d.dead += off - pendingStart
				}
				d.dead += int64(n)
				dropPending()
			} else {
				for _, op := range pending {
					d.apply(string(op.rec.key), entry{
						seg: seg.id, off: op.off, flen: op.flen,
						del: op.rec.kind == recStagedDel,
					})
				}
				pending, pendingStart = nil, -1
			}
		}
		off += int64(n)
	}

	if truncTo < 0 && pendingStart >= 0 {
		// Segment ends inside a staged group: the commit record never
		// made it to the medium, so the group never happened.
		truncTo = pendingStart
		d.repairs.Add(1)
	}
	if truncTo >= 0 {
		if err := seg.f.Truncate(truncTo); err != nil {
			return fmt.Errorf("diskdb: truncating torn tail of %s: %w", segName(seg.id), err)
		}
		seg.size = truncTo
	}
	return nil
}

// apply installs a replayed or freshly written entry, keeping the live
// and dead-byte accounting. Caller holds d.mu (or is still single-owner
// inside Open).
func (d *DB) apply(key string, e entry) {
	if old, ok := d.index[key]; ok {
		d.dead += int64(old.flen)
		if !old.del {
			d.live--
		}
	}
	if !e.del {
		d.live++
	}
	d.index[key] = e
}

func (d *DB) closeAll() {
	for _, seg := range d.segs {
		seg.f.Close()
	}
}

// degrade flips the store read-only, remembering the first cause. Caller
// holds d.mu.
func (d *DB) degrade(cause error) {
	if d.ro == nil {
		d.ro = cause
	}
}

// roError is the error every write returns once degraded. Caller holds d.mu.
func (d *DB) roError() error {
	return fmt.Errorf("diskdb: %w (cause: %v)", db.ErrReadOnly, d.ro)
}

// writable gates the write paths. Caller holds d.mu.
func (d *DB) writable() error {
	if d.closed {
		return errClosed
	}
	if d.ro != nil {
		return d.roError()
	}
	return nil
}

// rotate opens a fresh segment when the active one has reached the
// threshold. Caller holds d.mu.
func (d *DB) rotate() error {
	if d.active.size < d.opts.SegmentBytes {
		return nil
	}
	id := d.active.id + 1
	f, err := d.fs.Open(segName(id))
	if err != nil {
		if db.IsTransient(err) {
			return fmt.Errorf("diskdb: rotating to %s: %w", segName(id), err)
		}
		d.degrade(fmt.Errorf("rotation to %s failed: %v", segName(id), err))
		return d.roError()
	}
	size, err := f.Size()
	if err != nil {
		f.Close()
		if db.IsTransient(err) {
			return fmt.Errorf("diskdb: rotating to %s: %w", segName(id), err)
		}
		d.degrade(fmt.Errorf("rotation to %s failed: %v", segName(id), err))
		return d.roError()
	}
	seg := &segment{id: id, f: f, size: size}
	d.segs[id] = seg
	d.ids = append(d.ids, id)
	d.active = seg
	return nil
}

// appendDurable appends one buffer (a record, or a whole staged group) to
// the active segment and fsyncs it. On failure the file is truncated back
// to the pre-append offset so the next attempt lands on clean framing —
// which is what makes a blind re-append from db.Retry safe. If even the
// truncate repair fails, the medium is unwritable: degrade to read-only.
// Caller holds d.mu.
func (d *DB) appendDurable(buf []byte) (int64, error) {
	seg := d.active
	off := seg.size
	_, err := seg.f.Append(buf)
	if err == nil {
		if err = seg.f.Sync(); err == nil {
			seg.size += int64(len(buf))
			return off, nil
		}
	}
	if terr := seg.f.Truncate(off); terr != nil {
		d.degrade(fmt.Errorf("append to %s failed (%v) and truncate repair failed: %v",
			segName(seg.id), err, terr))
		return 0, d.roError()
	}
	if !db.IsTransient(err) {
		d.degrade(fmt.Errorf("append to %s failed: %v", segName(seg.id), err))
		return 0, d.roError()
	}
	return 0, fmt.Errorf("diskdb: append to %s: %w", segName(seg.id), err)
}

// Get implements db.KV: an index lookup, then a read of the record's
// frame from its segment, checksum-verified end to end.
func (d *DB) Get(key []byte) ([]byte, bool, error) {
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return nil, false, errClosed
	}
	e, ok := d.index[string(key)]
	if !ok || e.del {
		d.mu.RUnlock()
		d.reads.Add(1)
		d.misses.Add(1)
		return nil, false, nil
	}
	seg := d.segs[e.seg]
	buf := make([]byte, e.flen)
	_, err := seg.f.ReadAt(buf, e.off)
	d.mu.RUnlock()
	d.reads.Add(1)
	if err != nil {
		return nil, false, fmt.Errorf("diskdb: reading %s@%d: %w", segName(e.seg), e.off, err)
	}
	rec, _, derr := decodeRecord(buf)
	if derr != nil || !bytes.Equal(rec.key, key) ||
		(rec.kind != recPut && rec.kind != recStagedPut) {
		if derr == nil {
			derr = errFramePayload
		}
		return nil, false, transientErr{fmt.Errorf("diskdb: reading %s@%d: %w", segName(e.seg), e.off, derr)}
	}
	d.hits.Add(1)
	return rec.value, true, nil
}

// Has implements db.KV: index-only, no disk read.
func (d *DB) Has(key []byte) (bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if d.closed {
		return false, errClosed
	}
	e, ok := d.index[string(key)]
	return ok && !e.del, nil
}

// Put implements db.KV: one record, one append, one fsync.
func (d *DB) Put(key, value []byte) error {
	frame := appendRecord(nil, recPut, key, value)
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writable(); err != nil {
		return err
	}
	if err := d.rotate(); err != nil {
		return err
	}
	off, err := d.appendDurable(frame)
	if err != nil {
		return err
	}
	d.apply(string(key), entry{seg: d.active.id, off: off, flen: int32(len(frame))})
	d.writes.Add(1)
	return nil
}

// Delete implements db.KV: appends a tombstone record. Deleting an
// absent key is a no-op and writes nothing.
func (d *DB) Delete(key []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writable(); err != nil {
		return err
	}
	d.deletes.Add(1)
	if e, ok := d.index[string(key)]; !ok || e.del {
		return nil
	}
	if err := d.rotate(); err != nil {
		return err
	}
	frame := appendRecord(nil, recDel, key, nil)
	off, err := d.appendDurable(frame)
	if err != nil {
		return err
	}
	d.apply(string(key), entry{seg: d.active.id, off: off, flen: int32(len(frame)), del: true})
	return nil
}

// Stats implements db.KV.
func (d *DB) Stats() db.Stats {
	d.mu.RLock()
	live := d.live
	d.mu.RUnlock()
	return db.Stats{
		Reads:   d.reads.Load(),
		Writes:  d.writes.Load(),
		Deletes: d.deletes.Load(),
		Hits:    d.hits.Load(),
		Misses:  d.misses.Load(),
		Entries: live,
		Repairs: d.repairs.Load(),
	}
}

// ReadOnly reports whether the store has degraded, and why.
func (d *DB) ReadOnly() (bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.ro != nil, d.ro
}

// Segments reports the current segment count (rotation/compaction tests).
func (d *DB) Segments() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.ids)
}

// DeadBytes reports bytes held by superseded or skipped records — the
// space Compact reclaims.
func (d *DB) DeadBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.dead
}

// Close releases every segment handle. The store refuses further use.
func (d *DB) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.closed {
		return nil
	}
	d.closed = true
	var first error
	for _, id := range d.ids {
		if err := d.segs[id].f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Compact rewrites the live set (plus still-needed tombstones, so a crash
// mid-compaction can never resurrect deleted keys) into one fresh segment
// and removes the old ones. Replay order makes the pass crash-safe at
// every point: the new segment has the highest id, so its records win on
// reopen, and the old segments stay on disk until the new one is durable.
func (d *DB) Compact() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writable(); err != nil {
		return err
	}
	newID := d.active.id + 1
	f, err := d.fs.Open(segName(newID))
	if err != nil {
		return fmt.Errorf("diskdb: compaction segment: %w", err)
	}
	abort := func(cause error) error {
		f.Close()
		d.fs.Remove(segName(newID)) // best effort; a leftover partial segment replays harmlessly
		return cause
	}

	keys := make([]string, 0, len(d.index))
	for k := range d.index {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	staged := make(map[string]entry, len(d.index))
	var (
		buf      []byte
		written  int64
		dead     int64
		liveLost int
	)
	flush := func() error {
		if len(buf) == 0 {
			return nil
		}
		if _, err := f.Append(buf); err != nil {
			return fmt.Errorf("diskdb: compaction append: %w", err)
		}
		written += int64(len(buf))
		buf = buf[:0]
		return nil
	}
	for _, k := range keys {
		e := d.index[k]
		var frame []byte
		if e.del {
			frame = appendRecord(nil, recDel, []byte(k), nil)
			dead += int64(len(frame)) // tombstones are kept but carry no live data
		} else {
			seg := d.segs[e.seg]
			rbuf := make([]byte, e.flen)
			if _, err := seg.f.ReadAt(rbuf, e.off); err != nil {
				return abort(fmt.Errorf("diskdb: compaction read %s@%d: %w", segName(e.seg), e.off, err))
			}
			rec, _, derr := decodeRecord(rbuf)
			if derr != nil || string(rec.key) != k {
				// At-rest rot found while compacting: the value is gone
				// either way; drop the key and count the repair.
				d.repairs.Add(1)
				liveLost++
				continue
			}
			frame = appendRecord(nil, recPut, []byte(k), rec.value)
		}
		staged[k] = entry{seg: newID, off: written + int64(len(buf)), flen: int32(len(frame)), del: e.del}
		buf = append(buf, frame...)
		if len(buf) >= 1<<20 {
			if err := flush(); err != nil {
				return abort(err)
			}
		}
	}
	if err := flush(); err != nil {
		return abort(err)
	}
	if err := f.Sync(); err != nil {
		return abort(fmt.Errorf("diskdb: compaction sync: %w", err))
	}

	// The new segment is durable: retire the old ones.
	var removeErr error
	for _, id := range d.ids {
		d.segs[id].f.Close()
		if err := d.fs.Remove(segName(id)); err != nil && removeErr == nil {
			removeErr = err // stale lower-id segments replay harmlessly; still report
		}
	}
	d.segs = map[uint64]*segment{newID: {id: newID, f: f, size: written}}
	d.ids = []uint64{newID}
	d.active = d.segs[newID]
	d.index = staged
	d.live -= liveLost
	d.dead = dead
	return removeErr
}

// NewBatch implements db.KV.
func (d *DB) NewBatch() db.Batch { return &diskBatch{d: d} }

type batchOp struct {
	key, value []byte
	del        bool
}

type diskBatch struct {
	d    *DB
	ops  []batchOp
	size int
}

func (b *diskBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(value)
}

func (b *diskBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: append([]byte(nil), key...), del: true})
}

func (b *diskBatch) Len() int       { return len(b.ops) }
func (b *diskBatch) ValueSize() int { return b.size }

func (b *diskBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

// Write implements db.Batch: the whole group — staged records plus the
// commit record — goes down in a single append+fsync, so the commit
// record's durability is the batch's single commit point.
func (b *diskBatch) Write() error {
	if len(b.ops) == 0 {
		return nil
	}
	total := 0
	for _, op := range b.ops {
		total += frameSize(op.key, op.value)
	}
	buf := make([]byte, 0, total+frameSize(nil, make([]byte, 4)))
	for _, op := range b.ops {
		kind := recStagedPut
		if op.del {
			kind = recStagedDel
		}
		buf = appendRecord(buf, kind, op.key, op.value)
	}
	var count [4]byte
	binary.BigEndian.PutUint32(count[:], uint32(len(b.ops)))
	buf = appendRecord(buf, recCommit, nil, count[:])

	d := b.d
	d.mu.Lock()
	defer d.mu.Unlock()
	if err := d.writable(); err != nil {
		return err
	}
	if err := d.rotate(); err != nil {
		return err
	}
	off, err := d.appendDurable(buf)
	if err != nil {
		return err
	}
	cursor := off
	for _, op := range b.ops {
		fl := frameSize(op.key, op.value)
		d.apply(string(op.key), entry{seg: d.active.id, off: cursor, flen: int32(fl), del: op.del})
		cursor += int64(fl)
		if op.del {
			d.deletes.Add(1)
		} else {
			d.writes.Add(1)
		}
	}
	b.Reset()
	return nil
}
