package diskdb

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"forkwatch/internal/db"
	"forkwatch/internal/db/diskdb/faultfile"
)

func openTmp(t *testing.T, opts Options) (*DB, string) {
	t.Helper()
	dir := t.TempDir()
	d := reopenDir(t, dir, opts)
	return d, dir
}

func reopenDir(t *testing.T, dir string, opts Options) *DB {
	t.Helper()
	fs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Open(fs, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return d
}

func mustPut(t *testing.T, d *DB, k, v string) {
	t.Helper()
	if err := d.Put([]byte(k), []byte(v)); err != nil {
		t.Fatalf("Put(%q): %v", k, err)
	}
}

func mustGet(t *testing.T, d *DB, k, want string) {
	t.Helper()
	v, ok, err := d.Get([]byte(k))
	if err != nil || !ok || string(v) != want {
		t.Fatalf("Get(%q) = %q %v %v, want %q", k, v, ok, err, want)
	}
}

func mustAbsent(t *testing.T, d *DB, k string) {
	t.Helper()
	if v, ok, err := d.Get([]byte(k)); err != nil || ok {
		t.Fatalf("Get(%q) = %q %v %v, want absent", k, v, ok, err)
	}
}

func TestRoundTripAndReopen(t *testing.T) {
	d, dir := openTmp(t, Options{})
	mustPut(t, d, "alpha", "1")
	mustPut(t, d, "beta", "2")
	mustPut(t, d, "alpha", "3") // supersede
	if err := d.Delete([]byte("beta")); err != nil {
		t.Fatal(err)
	}
	if err := d.Delete([]byte("never-existed")); err != nil {
		t.Fatal(err)
	}
	mustGet(t, d, "alpha", "3")
	mustAbsent(t, d, "beta")
	if ok, err := d.Has([]byte("alpha")); err != nil || !ok {
		t.Fatalf("Has(alpha) = %v %v", ok, err)
	}
	if ok, err := d.Has([]byte("beta")); err != nil || ok {
		t.Fatalf("Has(beta) = %v %v, want deleted", ok, err)
	}
	if st := d.Stats(); st.Entries != 1 {
		t.Fatalf("Entries = %d, want 1", st.Entries)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	re := reopenDir(t, dir, Options{})
	defer re.Close()
	mustGet(t, re, "alpha", "3")
	mustAbsent(t, re, "beta")
	if st := re.Stats(); st.Repairs != 0 {
		t.Fatalf("clean reopen counted %d repairs", st.Repairs)
	}
}

func TestBatchCommitAndReopen(t *testing.T) {
	d, dir := openTmp(t, Options{})
	mustPut(t, d, "pre", "x")
	b := d.NewBatch()
	b.Put([]byte("k1"), []byte("v1"))
	b.Put([]byte("k2"), []byte("v2"))
	b.Delete([]byte("pre"))
	if b.Len() != 3 {
		t.Fatalf("Len = %d", b.Len())
	}
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatal("batch not reset after Write")
	}
	mustGet(t, d, "k1", "v1")
	mustGet(t, d, "k2", "v2")
	mustAbsent(t, d, "pre")
	d.Close()

	re := reopenDir(t, dir, Options{})
	defer re.Close()
	mustGet(t, re, "k1", "v1")
	mustGet(t, re, "k2", "v2")
	mustAbsent(t, re, "pre")
}

func TestRotationSpansSegments(t *testing.T) {
	d, dir := openTmp(t, Options{SegmentBytes: 256})
	for i := 0; i < 40; i++ {
		mustPut(t, d, fmt.Sprintf("key-%02d", i), fmt.Sprintf("value-%02d", i))
	}
	if d.Segments() < 2 {
		t.Fatalf("no rotation happened: %d segment(s)", d.Segments())
	}
	d.Close()

	re := reopenDir(t, dir, Options{SegmentBytes: 256})
	defer re.Close()
	for i := 0; i < 40; i++ {
		mustGet(t, re, fmt.Sprintf("key-%02d", i), fmt.Sprintf("value-%02d", i))
	}
}

// appendRaw writes raw bytes to the end of a segment file on disk,
// bypassing the store (simulating a torn append).
func appendRaw(t *testing.T, dir string, seg uint64, raw []byte) {
	t.Helper()
	f, err := os.OpenFile(filepath.Join(dir, segName(seg)), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(raw); err != nil {
		t.Fatal(err)
	}
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	d, dir := openTmp(t, Options{})
	mustPut(t, d, "safe", "durable")
	d.Close()

	// Half a frame: a valid header claiming more payload than exists.
	torn := appendRecord(nil, recPut, []byte("torn"), []byte("lost-value"))
	appendRaw(t, dir, 1, torn[:len(torn)-4])

	re := reopenDir(t, dir, Options{})
	defer re.Close()
	mustGet(t, re, "safe", "durable")
	mustAbsent(t, re, "torn")
	if st := re.Stats(); st.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", st.Repairs)
	}
	// The truncation must be durable: a second reopen sees a clean file.
	re.Close()
	re2 := reopenDir(t, dir, Options{})
	defer re2.Close()
	if st := re2.Stats(); st.Repairs != 0 {
		t.Fatalf("repair did not stick: %d repairs on second open", st.Repairs)
	}
	mustGet(t, re2, "safe", "durable")
}

func TestUncommittedGroupDroppedOnOpen(t *testing.T) {
	d, dir := openTmp(t, Options{})
	mustPut(t, d, "safe", "durable")
	d.Close()

	// Staged records with no commit marker: the batch never committed.
	group := appendRecord(nil, recStagedPut, []byte("ghost1"), []byte("x"))
	group = appendRecord(group, recStagedPut, []byte("ghost2"), []byte("y"))
	appendRaw(t, dir, 1, group)

	re := reopenDir(t, dir, Options{})
	defer re.Close()
	mustGet(t, re, "safe", "durable")
	mustAbsent(t, re, "ghost1")
	mustAbsent(t, re, "ghost2")
	if st := re.Stats(); st.Repairs == 0 {
		t.Fatal("uncommitted group dropped without counting a repair")
	}
}

func TestCommitCountMismatchDropsGroup(t *testing.T) {
	d, dir := openTmp(t, Options{})
	mustPut(t, d, "safe", "durable")
	d.Close()

	// A commit record claiming 3 staged ops when only 1 precedes it.
	group := appendRecord(nil, recStagedPut, []byte("ghost"), []byte("x"))
	group = appendRecord(group, recCommit, nil, []byte{0, 0, 0, 3})
	appendRaw(t, dir, 1, group)

	re := reopenDir(t, dir, Options{})
	defer re.Close()
	mustGet(t, re, "safe", "durable")
	mustAbsent(t, re, "ghost")
	if st := re.Stats(); st.Repairs == 0 {
		t.Fatal("mismatched commit accepted without a repair")
	}
}

func TestChecksumSkipMidFile(t *testing.T) {
	d, dir := openTmp(t, Options{})
	mustPut(t, d, "victim", "will-rot")
	mustPut(t, d, "survivor", "fine")
	d.Close()

	// Rot one bit inside the first record's value, mid-file.
	path := filepath.Join(dir, segName(1))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	first := frameSize([]byte("victim"), []byte("will-rot"))
	raw[first-2] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	re := reopenDir(t, dir, Options{})
	defer re.Close()
	mustAbsent(t, re, "victim") // rotted record skipped, no older version
	mustGet(t, re, "survivor", "fine")
	if st := re.Stats(); st.Repairs != 1 {
		t.Fatalf("Repairs = %d, want 1", st.Repairs)
	}
}

func TestCompaction(t *testing.T) {
	d, dir := openTmp(t, Options{SegmentBytes: 128})
	for round := 0; round < 5; round++ {
		for i := 0; i < 10; i++ {
			mustPut(t, d, fmt.Sprintf("k%d", i), fmt.Sprintf("r%d-%d", round, i))
		}
	}
	if err := d.Delete([]byte("k3")); err != nil {
		t.Fatal(err)
	}
	pre := d.Segments()
	if pre < 2 {
		t.Fatalf("want multiple segments before compaction, have %d", pre)
	}
	if err := d.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if d.Segments() != 1 {
		t.Fatalf("Segments after compaction = %d, want 1", d.Segments())
	}
	for i := 0; i < 10; i++ {
		if i == 3 {
			mustAbsent(t, d, "k3")
			continue
		}
		mustGet(t, d, fmt.Sprintf("k%d", i), fmt.Sprintf("r4-%d", i))
	}
	// Still writable and durable after the pass.
	mustPut(t, d, "post", "compaction")
	d.Close()

	re := reopenDir(t, dir, Options{SegmentBytes: 128})
	defer re.Close()
	mustAbsent(t, re, "k3") // the kept tombstone must not resurrect
	mustGet(t, re, "k5", "r4-5")
	mustGet(t, re, "post", "compaction")
}

func TestCrashTornAppendRecovers(t *testing.T) {
	dir := t.TempDir()
	osfs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	ffs := faultfile.Wrap(osfs, faultfile.Faults{Seed: 7})
	d, err := Open(ffs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mustPut(t, d, "durable", "yes")

	// Crash on the next append: the batch tears mid-buffer.
	ffs.CrashAtWriteOp(ffs.WriteOps() + 1)
	b := d.NewBatch()
	b.Put([]byte("t1"), bytes.Repeat([]byte("a"), 100))
	b.Put([]byte("t2"), bytes.Repeat([]byte("b"), 100))
	if err := b.Write(); !errors.Is(err, faultfile.ErrCrashed) &&
		!errors.Is(err, db.ErrReadOnly) {
		t.Fatalf("torn batch Write = %v, want crash or read-only degrade", err)
	}
	if !ffs.Crashed() {
		t.Fatal("medium did not crash")
	}
	d.Close()

	ffs.Reopen()
	re, err := Open(ffs, Options{})
	if err != nil {
		t.Fatalf("Open after crash: %v", err)
	}
	defer re.Close()
	mustGet(t, re, "durable", "yes")
	mustAbsent(t, re, "t1")
	mustAbsent(t, re, "t2")
	// And the store accepts writes again on the reopened medium.
	mustPut(t, re, "after", "restart")
	mustGet(t, re, "after", "restart")
}

func TestRetryAbsorbsInjectedFaults(t *testing.T) {
	dir := t.TempDir()
	osfs, err := NewOSFS(dir)
	if err != nil {
		t.Fatal(err)
	}
	ffs := faultfile.Wrap(osfs, faultfile.Faults{
		Seed:           42,
		ReadErrRate:    0.2,
		WriteErrRate:   0.2,
		ShortWriteRate: 0.05,
		CorruptRate:    0.05,
	})
	d, err := Open(ffs, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	kv := db.NewRetry(d, 64)
	for i := 0; i < 60; i++ {
		if err := kv.Put([]byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatalf("Put through faults: %v", err)
		}
	}
	for i := 0; i < 60; i++ {
		v, ok, err := kv.Get([]byte(fmt.Sprintf("k%02d", i)))
		if err != nil || !ok || string(v) != fmt.Sprintf("v%02d", i) {
			t.Fatalf("Get(k%02d) through faults = %q %v %v", i, v, ok, err)
		}
	}
	d.Close()

	// The medium under the faults holds a consistent store.
	ffs.SetEnabled(false)
	re, err := Open(ffs, Options{SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	for i := 0; i < 60; i++ {
		mustGet(t, re, fmt.Sprintf("k%02d", i), fmt.Sprintf("v%02d", i))
	}
}

// brickFS fails every append non-transiently after a budget of writes,
// with truncate broken too: the unwritable-disk scenario that must
// degrade to read-only instead of panicking.
type brickFS struct {
	inner   FS
	budget  int
	bricked bool
}

var errBricked = errors.New("medium bricked")

func (b *brickFS) Open(name string) (File, error) {
	f, err := b.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &brickFile{fs: b, inner: f}, nil
}
func (b *brickFS) Remove(name string) error  { return b.inner.Remove(name) }
func (b *brickFS) List() ([]string, error)   { return b.inner.List() }

type brickFile struct {
	fs    *brickFS
	inner File
}

func (f *brickFile) ReadAt(p []byte, off int64) (int, error) { return f.inner.ReadAt(p, off) }
func (f *brickFile) Append(p []byte) (int, error) {
	if f.fs.budget <= 0 {
		f.fs.bricked = true
		return 0, errBricked
	}
	f.fs.budget--
	return f.inner.Append(p)
}
func (f *brickFile) Truncate(size int64) error {
	if f.fs.bricked {
		return errBricked
	}
	return f.inner.Truncate(size)
}
func (f *brickFile) Sync() error          { return f.inner.Sync() }
func (f *brickFile) Size() (int64, error) { return f.inner.Size() }
func (f *brickFile) Close() error         { return f.inner.Close() }

func TestDegradeToReadOnly(t *testing.T) {
	osfs, err := NewOSFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bfs := &brickFS{inner: osfs, budget: 3}
	d, err := Open(bfs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	mustPut(t, d, "a", "1")
	mustPut(t, d, "b", "2")
	mustPut(t, d, "c", "3")

	err = d.Put([]byte("d"), []byte("4"))
	if !errors.Is(err, db.ErrReadOnly) {
		t.Fatalf("Put on bricked medium = %v, want ErrReadOnly", err)
	}
	if db.IsTransient(err) {
		t.Fatal("ErrReadOnly must not be transient (retrying a dead disk is pointless)")
	}
	// Every further write fails the same way; batches too.
	if err := d.Delete([]byte("a")); !errors.Is(err, db.ErrReadOnly) {
		t.Fatalf("Delete after degrade = %v", err)
	}
	b := d.NewBatch()
	b.Put([]byte("e"), []byte("5"))
	if err := b.Write(); !errors.Is(err, db.ErrReadOnly) {
		t.Fatalf("batch Write after degrade = %v", err)
	}
	if err := d.Compact(); !errors.Is(err, db.ErrReadOnly) {
		t.Fatalf("Compact after degrade = %v", err)
	}
	if ro, cause := d.ReadOnly(); !ro || cause == nil {
		t.Fatalf("ReadOnly() = %v %v", ro, cause)
	}
	// Reads keep serving the archive.
	mustGet(t, d, "a", "1")
	mustGet(t, d, "b", "2")
	mustGet(t, d, "c", "3")
	mustAbsent(t, d, "d")
}

func TestOpenThroughDBConfig(t *testing.T) {
	dir := t.TempDir()
	kv, err := db.Open(db.Config{Backend: db.BackendDisk, DataDir: dir})
	if err != nil {
		t.Fatalf("db.Open(disk): %v", err)
	}
	if err := kv.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if d, ok := kv.(*DB); !ok {
		t.Fatalf("db.Open(disk) = %T, want *diskdb.DB", kv)
	} else {
		d.Close()
	}

	re, err := db.Open(db.Config{Backend: db.BackendDisk, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	v, ok, err := re.Get([]byte("k"))
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("persisted Get = %q %v %v", v, ok, err)
	}
	re.(*DB).Close()
}

func TestClosedStoreRefusesUse(t *testing.T) {
	d, _ := openTmp(t, Options{})
	mustPut(t, d, "k", "v")
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Get([]byte("k")); !errors.Is(err, errClosed) {
		t.Fatalf("Get after Close = %v", err)
	}
	if err := d.Put([]byte("k"), []byte("v")); !errors.Is(err, errClosed) {
		t.Fatalf("Put after Close = %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("double Close = %v", err)
	}
}
