package faultfile

import (
	"errors"
	"fmt"
	"testing"

	"forkwatch/internal/db"
	"forkwatch/internal/db/dbfs"
)

// memFS is a tiny in-memory dbfs.FS so the tests can inspect exactly
// which bytes the injection layer let through to the medium.
type memFS map[string][]byte

func (m memFS) Open(name string) (dbfs.File, error) {
	if _, ok := m[name]; !ok {
		m[name] = nil
	}
	return &memFile{m: m, name: name}, nil
}
func (m memFS) Remove(name string) error { delete(m, name); return nil }
func (m memFS) List() ([]string, error) {
	var names []string
	for name := range m {
		names = append(names, name)
	}
	return names, nil
}

type memFile struct {
	m    memFS
	name string
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	data := f.m[f.name]
	if off+int64(len(p)) > int64(len(data)) {
		return 0, fmt.Errorf("memfile: read past end")
	}
	return copy(p, data[off:]), nil
}
func (f *memFile) Append(p []byte) (int, error) {
	f.m[f.name] = append(f.m[f.name], p...)
	return len(p), nil
}
func (f *memFile) Truncate(size int64) error {
	f.m[f.name] = f.m[f.name][:size]
	return nil
}
func (f *memFile) Sync() error          { return nil }
func (f *memFile) Size() (int64, error) { return int64(len(f.m[f.name])), nil }
func (f *memFile) Close() error         { return nil }

// drive runs a fixed operation sequence against a wrapped FS and returns
// the journal it produced.
func drive(t *testing.T, s *FS) []Event {
	t.Helper()
	f, err := s.Open("seg")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	buf := make([]byte, 8)
	for i := 0; i < 200; i++ {
		f.Append([]byte("payload-bytes"))
		f.Sync()
		f.ReadAt(buf, 0)
	}
	return s.Journal()
}

// TestJournalDeterministic: equal seeds and equal operation sequences
// must reproduce the exact fault timeline — that is what makes a chaos
// failure replayable.
func TestJournalDeterministic(t *testing.T) {
	plan := Faults{Seed: 42, ReadErrRate: 0.1, WriteErrRate: 0.1, ShortWriteRate: 0.1, CorruptRate: 0.1}
	a := drive(t, Wrap(memFS{}, plan))
	b := drive(t, Wrap(memFS{}, plan))
	if len(a) == 0 {
		t.Fatal("plan injected nothing; rates too low for the op count")
	}
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("journals diverge at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	plan.Seed = 43
	c := drive(t, Wrap(memFS{}, plan))
	same := len(a) == len(c)
	for i := 0; same && i < len(a); i++ {
		same = a[i] == c[i]
	}
	if same {
		t.Fatal("different seeds produced identical journals")
	}
}

// TestCrashAtWriteOpTearsExactAppend: the armed crash must land on the
// exact append, leave a strict prefix durable on the medium, and kill
// every later operation until Reopen.
func TestCrashAtWriteOpTearsExactAppend(t *testing.T) {
	m := memFS{}
	s := Wrap(m, Faults{Seed: 7})
	f, err := s.Open("seg")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := f.Append([]byte("0123456789")); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if got := s.WriteOps(); got != 3 {
		t.Fatalf("WriteOps = %d, want 3", got)
	}

	s.CrashAtWriteOp(s.WriteOps() + 1)
	n, err := f.Append([]byte("0123456789"))
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("armed append: n=%d err=%v, want ErrCrashed", n, err)
	}
	if n < 0 || n >= 10 {
		t.Fatalf("tear landed %d bytes, want strict prefix of 10", n)
	}
	if got := len(m["seg"]); got != 30+n {
		t.Fatalf("medium holds %d bytes, want %d (3 appends + %d-byte tear)", got, 30+n, n)
	}
	if !s.Crashed() {
		t.Fatal("medium not marked crashed")
	}
	if _, err := f.Append([]byte("more")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("append after crash: %v, want ErrCrashed", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("sync after crash: %v, want ErrCrashed", err)
	}
	if _, err := f.ReadAt(make([]byte, 4), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read after crash: %v, want ErrCrashed", err)
	}
	if _, err := s.Open("seg"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open after crash: %v, want ErrCrashed", err)
	}

	s.Reopen()
	if s.Crashed() {
		t.Fatal("Reopen left the medium crashed")
	}
	f2, err := s.Open("seg")
	if err != nil {
		t.Fatalf("open after reopen: %v", err)
	}
	if _, err := f2.Append([]byte("back")); err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if got := len(m["seg"]); got != 30+n+4 {
		t.Fatalf("medium holds %d bytes after reopen append, want %d", got, 30+n+4)
	}
}

// TestShortWriteLeavesPrefix: a short write must put a strict prefix on
// the medium and fail with the transient ErrInjected so db.Retry will
// re-attempt after the store truncate-repairs.
func TestShortWriteLeavesPrefix(t *testing.T) {
	m := memFS{}
	s := Wrap(m, Faults{Seed: 3, ShortWriteRate: 1})
	f, err := s.Open("seg")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	n, err := f.Append([]byte("0123456789"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("short write: n=%d err=%v, want ErrInjected", n, err)
	}
	if !db.IsTransient(err) {
		t.Fatal("short-write error is not transient")
	}
	if n < 0 || n >= 10 {
		t.Fatalf("short write landed %d bytes, want strict prefix of 10", n)
	}
	if got := len(m["seg"]); got != n {
		t.Fatalf("medium holds %d bytes, want %d", got, n)
	}
	if s.Crashed() {
		t.Fatal("short write crashed the medium; only torn writes should")
	}
	if got := s.WriteOps(); got != 0 {
		t.Fatalf("short write counted as applied: WriteOps = %d", got)
	}
}

// TestSetEnabledGatesRandomFaults: while disabled, the plan injects
// nothing — but explicit crashes are still honoured, which is what lets
// harnesses pause injection around recovery scans without losing an
// armed crash.
func TestSetEnabledGatesRandomFaults(t *testing.T) {
	s := Wrap(memFS{}, Faults{Seed: 1, ReadErrRate: 1, WriteErrRate: 1, ShortWriteRate: 1, CorruptRate: 1})
	s.SetEnabled(false)
	f, err := s.Open("seg")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := f.Append([]byte("clean")); err != nil {
		t.Fatalf("append while disabled: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync while disabled: %v", err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("read while disabled: %v", err)
	}
	if string(buf) != "clean" {
		t.Fatalf("read %q while disabled, want %q (no bit-rot)", buf, "clean")
	}
	if got := s.Journal(); len(got) != 0 {
		t.Fatalf("journal has %d events while disabled, want 0", len(got))
	}

	// An armed crash fires even while random injection is off.
	s.CrashAtWriteOp(s.WriteOps() + 1)
	if _, err := f.Append([]byte("boom")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("armed append while disabled: %v, want ErrCrashed", err)
	}

	s.Reopen()
	s.SetEnabled(true)
	f2, err := s.Open("seg")
	if err != nil {
		t.Fatalf("open after reopen: %v", err)
	}
	if _, err := f2.Append([]byte("x")); err == nil {
		t.Fatal("append with WriteErrRate=1 re-enabled succeeded")
	}
}
