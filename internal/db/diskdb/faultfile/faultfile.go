// Package faultfile wraps a dbfs.FS with deterministic, seeded fault
// injection on the real file API — the file-level counterpart of
// internal/db/faultkv. Where faultkv tears logical batches, faultfile
// breaks the physical medium underneath diskdb: short writes that leave a
// prefix of an append on disk, torn writes that additionally kill the
// process model, fsync errors, read-path bit-rot, and a crash armed to
// land on an exact append — which is what the crash-offset sweep and the
// disk chaos suites drive.
//
// Every fault decision comes from a seeded RNG and is journaled, so a
// chaos run that finds a bug replays bit-for-bit. Expected reactions in
// the stack above:
//
//   - ErrInjected failures (read errors, clean write errors, short
//     writes, sync errors) are transient: diskdb truncate-repairs its
//     tail where needed and db.Retry re-attempts.
//   - Bit-rot flips one bit in a read's buffer; diskdb's record checksum
//     catches it and the re-read is clean.
//   - Torn writes and armed crashes (CrashAtWriteOp) leave a prefix of
//     the append durable and crash the store: every later operation
//     fails with ErrCrashed until Reopen, after which diskdb.Open
//     replays the segments and truncates the torn tail.
package faultfile

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"forkwatch/internal/db/dbfs"
)

// ErrInjected is the transient injected I/O failure. db.IsTransient
// returns true for it, so db.Retry will re-attempt the operation.
var ErrInjected error = injectedError{}

type injectedError struct{}

func (injectedError) Error() string   { return "faultfile: injected I/O error" }
func (injectedError) Transient() bool { return true }

// ErrCrashed reports an operation against a crashed medium. It is not
// transient: the caller must Reopen the FS and rebuild the store on top
// (diskdb.Open runs the recovery scan).
var ErrCrashed = errors.New("faultfile: medium crashed (reopen and recover)")

// Faults is the injection plan. The zero value injects nothing.
type Faults struct {
	// Seed drives every fault decision; equal seeds reproduce runs.
	Seed int64
	// ReadErrRate is the probability a ReadAt fails with ErrInjected.
	ReadErrRate float64
	// WriteErrRate is the probability an Append fails cleanly (nothing
	// written) with ErrInjected, or a Sync fails with ErrInjected.
	WriteErrRate float64
	// ShortWriteRate is the probability an Append writes only a random
	// strict prefix and fails with ErrInjected (a transient torn write
	// the store is expected to truncate-repair).
	ShortWriteRate float64
	// TornWriteRate is the probability an Append writes only a random
	// strict prefix and crashes the medium (power loss mid-write).
	TornWriteRate float64
	// CorruptRate is the probability a successful ReadAt flips one bit in
	// the returned buffer (read-path bit-rot).
	CorruptRate float64
	// StallEvery injects a Stall-long sleep into every Nth operation
	// (0 disables).
	StallEvery int
	// Stall is the duration of an injected stall.
	Stall time.Duration
}

// Enabled reports whether the plan injects any fault at all.
func (f Faults) Enabled() bool {
	return f.ReadErrRate > 0 || f.WriteErrRate > 0 || f.ShortWriteRate > 0 ||
		f.TornWriteRate > 0 || f.CorruptRate > 0 || (f.StallEvery > 0 && f.Stall > 0)
}

// journalCap bounds the recorded fault decisions.
const journalCap = 4096

// Event is one journaled fault decision.
type Event struct {
	// Seq is the global operation counter when the fault fired.
	Seq uint64
	// Op names the operation ("read", "append", "sync", "truncate",
	// "open", "reopen").
	Op string
	// Kind names the fault ("ioerr", "short", "torn", "bitrot", "stall",
	// "crashed", "reopen").
	Kind string
	// Name is the affected file.
	Name string
	// TornAt is, for short/torn appends, how many bytes landed.
	TornAt int
}

// FS decorates an inner dbfs.FS with the fault plan. Safe for
// concurrent use; fault decisions are serialized so runs stay
// deterministic given a deterministic operation order.
type FS struct {
	inner dbfs.FS
	f     Faults

	mu           sync.Mutex
	rng          *rand.Rand
	ops          uint64 // all operations, for StallEvery
	writeOps     uint64 // applied appends, for CrashAtWriteOp
	crashAtWrite uint64 // crash when writeOps would reach this (0 = unarmed)
	crashed      bool
	disabled     bool // random injection paused (crashes still honoured)
	journal      []Event
}

// Wrap decorates inner with the fault plan.
func Wrap(inner dbfs.FS, f Faults) *FS {
	return &FS{inner: inner, f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// Inner returns the wrapped filesystem.
func (s *FS) Inner() dbfs.FS { return s.inner }

// SetEnabled toggles the random fault plan. While disabled, no stalls,
// errors, tears or bit-rot are injected and the seeded RNG is not drawn,
// but explicit crashes (Crash, CrashAtWriteOp) and an already-crashed
// state are still honoured. Harnesses disable injection around recovery
// scans (diskdb.Open) and bootstrap writes that have no recovery path,
// then re-enable at a deterministic point so runs stay reproducible.
func (s *FS) SetEnabled(on bool) {
	s.mu.Lock()
	s.disabled = !on
	s.mu.Unlock()
}

// Journal returns a copy of the recorded fault decisions.
func (s *FS) Journal() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Event(nil), s.journal...)
}

// WriteOps returns the number of appends fully applied so far. Use with
// CrashAtWriteOp to land a crash on an exact append.
func (s *FS) WriteOps() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.writeOps
}

// CrashAtWriteOp arms a crash: the n-th append of the medium's life (see
// WriteOps for the current count) tears — a random strict prefix lands —
// and the medium dies. Every subsequent operation fails with ErrCrashed
// until Reopen.
func (s *FS) CrashAtWriteOp(n uint64) {
	s.mu.Lock()
	s.crashAtWrite = n
	s.mu.Unlock()
}

// Crash kills the medium immediately.
func (s *FS) Crash() {
	s.mu.Lock()
	s.setCrashed("crash", "")
	s.mu.Unlock()
}

// Crashed reports whether the medium is dead.
func (s *FS) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Reopen models the process restarting over the same medium: the crash
// flag clears and any armed crash point is disarmed. Whatever torn bytes
// the crash left on the files are still there — running recovery
// (diskdb.Open) is the caller's job.
func (s *FS) Reopen() {
	s.mu.Lock()
	s.crashed = false
	s.crashAtWrite = 0
	s.record(Event{Seq: s.ops, Op: "reopen", Kind: "reopen"})
	s.mu.Unlock()
}

// record appends ev to the bounded journal. Caller holds s.mu.
func (s *FS) record(ev Event) {
	if len(s.journal) < journalCap {
		s.journal = append(s.journal, ev)
	}
}

// setCrashed marks the medium dead. Caller holds s.mu.
func (s *FS) setCrashed(op, name string) {
	if !s.crashed {
		s.crashed = true
		s.record(Event{Seq: s.ops, Op: op, Kind: "crashed", Name: name})
	}
}

// step runs the common per-operation bookkeeping: stall injection and the
// crashed check. Caller holds s.mu. Returns ErrCrashed when dead.
func (s *FS) step(op, name string) error {
	s.ops++
	if s.crashed {
		return ErrCrashed
	}
	if !s.disabled && s.f.StallEvery > 0 && s.f.Stall > 0 && s.ops%uint64(s.f.StallEvery) == 0 {
		s.record(Event{Seq: s.ops, Op: op, Kind: "stall", Name: name})
		s.mu.Unlock()
		time.Sleep(s.f.Stall)
		s.mu.Lock()
		if s.crashed { // crashed while stalled
			return ErrCrashed
		}
	}
	return nil
}

// Open implements dbfs.FS. Opening draws no random faults (there is no
// repair path for a store that cannot even open its files); only the
// crashed state gates it.
func (s *FS) Open(name string) (dbfs.File, error) {
	s.mu.Lock()
	err := s.step("open", name)
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	f, err := s.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: s, name: name, inner: f}, nil
}

// Remove implements dbfs.FS.
func (s *FS) Remove(name string) error {
	s.mu.Lock()
	err := s.step("remove", name)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return s.inner.Remove(name)
}

// List implements dbfs.FS.
func (s *FS) List() ([]string, error) {
	s.mu.Lock()
	err := s.step("list", "")
	s.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return s.inner.List()
}

// file decorates one segment file with the plan.
type file struct {
	fs    *FS
	name  string
	inner dbfs.File
}

// ReadAt implements dbfs.File with injected read errors and bit-rot.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	s := f.fs
	s.mu.Lock()
	if err := s.step("read", f.name); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	if !s.disabled && s.f.ReadErrRate > 0 && s.rng.Float64() < s.f.ReadErrRate {
		s.record(Event{Seq: s.ops, Op: "read", Kind: "ioerr", Name: f.name})
		s.mu.Unlock()
		return 0, ErrInjected
	}
	rot := !s.disabled && s.f.CorruptRate > 0 && s.rng.Float64() < s.f.CorruptRate
	var flip int
	if rot {
		flip = s.rng.Int()
		s.record(Event{Seq: s.ops, Op: "read", Kind: "bitrot", Name: f.name})
	}
	s.mu.Unlock()

	n, err := f.inner.ReadAt(p, off)
	if err == nil && rot && n > 0 {
		// The rot is on the read path: the medium's bytes stay pristine,
		// only this buffer is damaged.
		bit := flip % (n * 8)
		p[bit/8] ^= 1 << (bit % 8)
	}
	return n, err
}

// Append implements dbfs.File. Outcomes, in decision order:
//
//  1. crashed medium: ErrCrashed, nothing written;
//  2. armed crash landing on this append: a random strict prefix lands,
//     then the medium dies (ErrCrashed);
//  3. clean write error: ErrInjected, nothing written;
//  4. short write: a random strict prefix lands, ErrInjected (transient —
//     the store truncate-repairs and retries);
//  5. torn write: a random strict prefix lands and the medium dies;
//  6. otherwise the append goes through and counts as applied.
func (f *file) Append(p []byte) (int, error) {
	s := f.fs
	s.mu.Lock()
	if err := s.step("append", f.name); err != nil {
		s.mu.Unlock()
		return 0, err
	}
	tear := -1
	var tearErr error
	if s.crashAtWrite != 0 && s.writeOps+1 >= s.crashAtWrite {
		tear = s.prefix(len(p))
		tearErr = ErrCrashed
		s.record(Event{Seq: s.ops, Op: "append", Kind: "torn", Name: f.name, TornAt: tear})
		s.setCrashed("append", f.name)
	} else if !s.disabled && s.f.WriteErrRate > 0 && s.rng.Float64() < s.f.WriteErrRate {
		s.record(Event{Seq: s.ops, Op: "append", Kind: "ioerr", Name: f.name})
		s.mu.Unlock()
		return 0, ErrInjected
	} else if !s.disabled && s.f.ShortWriteRate > 0 && s.rng.Float64() < s.f.ShortWriteRate {
		tear = s.prefix(len(p))
		tearErr = ErrInjected
		s.record(Event{Seq: s.ops, Op: "append", Kind: "short", Name: f.name, TornAt: tear})
	} else if !s.disabled && s.f.TornWriteRate > 0 && s.rng.Float64() < s.f.TornWriteRate {
		tear = s.prefix(len(p))
		tearErr = ErrCrashed
		s.record(Event{Seq: s.ops, Op: "append", Kind: "torn", Name: f.name, TornAt: tear})
		s.setCrashed("append", f.name)
	}
	if tear < 0 {
		s.writeOps++
	}
	s.mu.Unlock()

	if tear >= 0 {
		if tear > 0 {
			if n, err := f.inner.Append(p[:tear]); err != nil {
				return n, err // the real medium failed under the injected tear
			}
			f.inner.Sync() // the torn prefix is durable, like a real power cut
		}
		return tear, tearErr
	}
	return f.inner.Append(p)
}

// prefix picks how many bytes of an n-byte append land before a tear: a
// strict prefix, possibly empty. Caller holds s.mu.
func (s *FS) prefix(n int) int {
	if n <= 1 {
		return 0
	}
	return s.rng.Intn(n)
}

// Sync implements dbfs.File with injected fsync errors (WriteErrRate).
func (f *file) Sync() error {
	s := f.fs
	s.mu.Lock()
	if err := s.step("sync", f.name); err != nil {
		s.mu.Unlock()
		return err
	}
	if !s.disabled && s.f.WriteErrRate > 0 && s.rng.Float64() < s.f.WriteErrRate {
		s.record(Event{Seq: s.ops, Op: "sync", Kind: "ioerr", Name: f.name})
		s.mu.Unlock()
		return ErrInjected
	}
	s.mu.Unlock()
	return f.inner.Sync()
}

// Truncate implements dbfs.File. Truncation is the repair action, so it
// draws no random faults — only the crashed state gates it (a dead
// process cannot repair anything).
func (f *file) Truncate(size int64) error {
	s := f.fs
	s.mu.Lock()
	err := s.step("truncate", f.name)
	s.mu.Unlock()
	if err != nil {
		return err
	}
	return f.inner.Truncate(size)
}

// Size implements dbfs.File.
func (f *file) Size() (int64, error) {
	s := f.fs
	s.mu.Lock()
	crashed := s.crashed
	s.mu.Unlock()
	if crashed {
		return 0, ErrCrashed
	}
	return f.inner.Size()
}

// Close implements dbfs.File. Always delegates — releasing a handle is
// legal even on a crashed medium (the reopen path closes the old store's
// files before rebuilding).
func (f *file) Close() error { return f.inner.Close() }
