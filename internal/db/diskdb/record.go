package diskdb

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Segment record framing (DESIGN.md §11). Every record is one frame:
//
//	crc32(payload)  uint32 BE
//	len(payload)    uint32 BE
//	payload:
//	    kind        byte
//	    len(key)    uint32 BE
//	    key         [len(key)]byte
//	    value       rest of the payload
//
// Record kinds. Plain puts and tombstones commit individually (one
// Append+Sync per record). A batch commits as one Append+Sync of staged
// records followed by a commit record carrying the group's operation
// count — the single durable commit point mirroring the chain WAL's
// single-Put protocol: replay applies a staged group only when its commit
// record survives with a matching count, so a torn batch write is
// indistinguishable from a batch that never happened.
const (
	recPut       = byte(1) // individually committed put
	recDel       = byte(2) // individually committed tombstone
	recStagedPut = byte(3) // put inside a batch group
	recStagedDel = byte(4) // tombstone inside a batch group
	recCommit    = byte(5) // batch commit marker; value = op count uint32 BE
)

const (
	frameHeader   = 8          // crc32 + payload length
	payloadHeader = 5          // kind + key length
	maxPayload    = 256 << 20  // sanity cap: a frame claiming more is treated as garbage
)

var (
	// errFrameTorn reports a frame whose header or body runs past the
	// available bytes: the torn-tail signature (truncate here).
	errFrameTorn = errors.New("diskdb: torn frame")
	// errFrameGarbage reports a frame with an implausible header (zero or
	// oversized payload): framing is lost from this point on.
	errFrameGarbage = errors.New("diskdb: garbage frame header")
	// errFrameChecksum reports a fully-present frame whose payload fails
	// its CRC (at-rest bit-rot: skip and count a repair).
	errFrameChecksum = errors.New("diskdb: frame checksum mismatch")
	// errFramePayload reports a CRC-valid payload that does not parse
	// (impossible without a codec bug, but the decoder is total).
	errFramePayload = errors.New("diskdb: undecodable frame payload")
)

// record is one decoded frame.
type record struct {
	kind  byte
	key   []byte // aliases the input buffer
	value []byte // aliases the input buffer
}

// appendRecord appends the frame for one record to dst.
func appendRecord(dst []byte, kind byte, key, value []byte) []byte {
	plen := payloadHeader + len(key) + len(value)
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0) // crc32, patched below
	dst = binary.BigEndian.AppendUint32(dst, uint32(plen))
	dst = append(dst, kind)
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(key)))
	dst = append(dst, key...)
	dst = append(dst, value...)
	crc := crc32.ChecksumIEEE(dst[start+frameHeader:])
	binary.BigEndian.PutUint32(dst[start:], crc)
	return dst
}

// frameSize returns the full frame length for a key/value pair.
func frameSize(key, value []byte) int {
	return frameHeader + payloadHeader + len(key) + len(value)
}

// decodeRecord decodes the frame starting at buf[0]. It returns the
// record, the total frame length consumed, and one of the errFrame*
// errors describing exactly what is wrong when the bytes are not a valid
// frame — the open-time scanner maps each to its repair action.
func decodeRecord(buf []byte) (record, int, error) {
	if len(buf) < frameHeader {
		return record{}, 0, errFrameTorn
	}
	crc := binary.BigEndian.Uint32(buf)
	plen := int(binary.BigEndian.Uint32(buf[4:]))
	if plen < payloadHeader || plen > maxPayload {
		return record{}, 0, errFrameGarbage
	}
	if len(buf) < frameHeader+plen {
		return record{}, 0, errFrameTorn
	}
	payload := buf[frameHeader : frameHeader+plen]
	if crc32.ChecksumIEEE(payload) != crc {
		return record{}, frameHeader + plen, errFrameChecksum
	}
	kind := payload[0]
	klen := int(binary.BigEndian.Uint32(payload[1:]))
	if kind < recPut || kind > recCommit || klen < 0 || payloadHeader+klen > plen {
		return record{}, frameHeader + plen, errFramePayload
	}
	return record{
		kind:  kind,
		key:   payload[payloadHeader : payloadHeader+klen],
		value: payload[payloadHeader+klen:],
	}, frameHeader + plen, nil
}
