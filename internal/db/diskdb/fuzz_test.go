package diskdb

import (
	"bytes"
	"testing"
)

// FuzzDecodeRecord drives the segment-record decoder with arbitrary
// bytes: it must never panic, never claim to consume more bytes than it
// was given, and must round-trip everything appendRecord produces.
func FuzzDecodeRecord(f *testing.F) {
	f.Add(appendRecord(nil, recPut, []byte("key"), []byte("value")))
	f.Add(appendRecord(nil, recDel, []byte("gone"), nil))
	f.Add(appendRecord(nil, recStagedPut, []byte("s"), bytes.Repeat([]byte{0xAA}, 100)))
	f.Add(appendRecord(nil, recCommit, nil, []byte{0, 0, 0, 2}))
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
	torn := appendRecord(nil, recPut, []byte("torn"), []byte("tail"))
	f.Add(torn[:len(torn)-3])

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := decodeRecord(data)
		if n < 0 || n > len(data)+maxPayload {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		if err == nil {
			if n > len(data) {
				t.Fatalf("valid record consumed %d > %d available bytes", n, len(data))
			}
			if rec.kind < recPut || rec.kind > recCommit {
				t.Fatalf("valid record with kind %d", rec.kind)
			}
			// A decoded record must re-encode to the exact same frame.
			again := appendRecord(nil, rec.kind, rec.key, rec.value)
			if !bytes.Equal(again, data[:n]) {
				t.Fatalf("re-encode mismatch:\n got %x\nwant %x", again, data[:n])
			}
		}
	})
}

// FuzzScanSegment replays arbitrary bytes as a whole segment through a
// store open: whatever the medium holds, Open must not panic and must
// leave a store that reads and writes.
func FuzzScanSegment(f *testing.F) {
	clean := appendRecord(nil, recPut, []byte("a"), []byte("1"))
	clean = appendRecord(clean, recStagedPut, []byte("b"), []byte("2"))
	clean = appendRecord(clean, recCommit, nil, []byte{0, 0, 0, 1})
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	f.Add([]byte("not a segment at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		fs := memFS{segName(1): append([]byte(nil), data...)}
		d, err := Open(fs, Options{})
		if err != nil {
			return // an unreadable medium may refuse to open; it must not panic
		}
		defer d.Close()
		if err := d.Put([]byte("post-open"), []byte("works")); err != nil {
			t.Fatalf("Put after scanning arbitrary segment: %v", err)
		}
		v, ok, err := d.Get([]byte("post-open"))
		if err != nil || !ok || string(v) != "works" {
			t.Fatalf("Get after scanning arbitrary segment: %q %v %v", v, ok, err)
		}
	})
}

// memFS is a minimal in-memory FS for fuzzing segment scans.
type memFS map[string][]byte

func (m memFS) Open(name string) (File, error) {
	if _, ok := m[name]; !ok {
		m[name] = nil
	}
	return &memFile{m: m, name: name}, nil
}
func (m memFS) Remove(name string) error { delete(m, name); return nil }
func (m memFS) List() ([]string, error) {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	return names, nil
}

type memFile struct {
	m    memFS
	name string
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	data := f.m[f.name]
	if off >= int64(len(data)) {
		return 0, bytes.ErrTooLarge // any error will do; diskdb only reads scanned ranges
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, bytes.ErrTooLarge
	}
	return n, nil
}
func (f *memFile) Append(p []byte) (int, error) {
	f.m[f.name] = append(f.m[f.name], p...)
	return len(p), nil
}
func (f *memFile) Truncate(size int64) error {
	f.m[f.name] = f.m[f.name][:size]
	return nil
}
func (f *memFile) Sync() error          { return nil }
func (f *memFile) Size() (int64, error) { return int64(len(f.m[f.name])), nil }
func (f *memFile) Close() error         { return nil }
