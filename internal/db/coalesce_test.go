package db

import (
	"bytes"
	"testing"
)

func TestCoalescerReadYourWrites(t *testing.T) {
	inner := NewMemDB()
	c := NewCoalescer(inner)

	if err := c.Put([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := c.Get([]byte("a"))
	if err != nil || !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("overlay read = %q %v %v, want \"1\"", v, ok, err)
	}
	// The inner store must not have seen the write yet.
	if _, ok, _ := inner.Get([]byte("a")); ok {
		t.Fatal("write reached inner store before Flush")
	}
	if has, _ := c.Has([]byte("a")); !has {
		t.Fatal("Has missed a staged key")
	}

	// Delete shadows an inner-store key until flushed.
	if err := inner.Put([]byte("b"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := c.Delete([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get([]byte("b")); ok {
		t.Fatal("staged delete not visible through overlay")
	}
	if has, _ := c.Has([]byte("b")); has {
		t.Fatal("Has saw a key with a staged delete")
	}

	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := inner.Get([]byte("a")); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("flush lost a = %q %v", v, ok)
	}
	if _, ok, _ := inner.Get([]byte("b")); ok {
		t.Fatal("flush did not apply the delete")
	}
	if c.Pending() != 0 {
		t.Fatalf("overlay not empty after flush: %d ops", c.Pending())
	}
}

func TestCoalescerBatchStagesWithoutInnerWrite(t *testing.T) {
	inner := NewMemDB()
	c := NewCoalescer(inner)

	b := c.NewBatch()
	b.Put([]byte("x"), []byte("10"))
	b.Put([]byte("y"), []byte("20"))
	b.Put([]byte("x"), []byte("11")) // last write wins
	if b.Len() != 3 || b.ValueSize() != 6 {
		t.Fatalf("Len/ValueSize = %d/%d, want 3/6", b.Len(), b.ValueSize())
	}
	if err := b.Write(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := c.Get([]byte("x")); !ok || !bytes.Equal(v, []byte("11")) {
		t.Fatalf("batch staging lost last write: %q %v", v, ok)
	}
	if got := inner.Stats().Writes; got != 0 {
		t.Fatalf("inner saw %d writes before Flush", got)
	}
	if c.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2 distinct keys", c.Pending())
	}

	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if v, ok, _ := inner.Get([]byte("x")); !ok || !bytes.Equal(v, []byte("11")) {
		t.Fatalf("flushed x = %q %v", v, ok)
	}
	// Flushing an empty overlay is a no-op, not an empty inner batch.
	writes := inner.Stats().Writes
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if inner.Stats().Writes != writes {
		t.Fatal("empty Flush touched the inner store")
	}
}

func TestCoalescerStatsCountOverlayHits(t *testing.T) {
	c := NewCoalescer(NewMemDB())
	if err := c.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	before := c.Stats()
	for i := 0; i < 3; i++ {
		if _, ok, _ := c.Get([]byte("k")); !ok {
			t.Fatal("lost staged key")
		}
	}
	after := c.Stats()
	if after.Reads-before.Reads != 3 || after.Hits-before.Hits != 3 {
		t.Fatalf("overlay reads not counted: before %+v after %+v", before, after)
	}
}
