// Package faultkv wraps any db.KV with deterministic, seeded storage
// fault injection: scripted I/O errors, torn (partially applied) batches,
// bit-rot read corruption and latency stalls — the storage counterpart of
// internal/faultnet's network faults.
//
// The paper's observations are stories about nodes surviving hostile
// events: O2's two-day recovery and O5's months-long replay window both
// presume ledgers that keep serving a consistent view through crashes and
// flaky disks. faultkv makes that survivable path testable: every fault
// decision comes from a seeded RNG and is journaled, so a chaos run that
// finds a bug replays bit-for-bit.
//
// Fault classes and how the stack above is expected to react:
//
//   - Injected I/O errors (ReadErrRate/WriteErrRate) are transient in the
//     db.IsTransient sense: db.Retry absorbs bounded runs of them, and
//     the trie/state/chain layers abort the current commit cleanly if the
//     budget is exhausted. Failed writes are atomic: nothing was applied.
//   - Torn batches (TornBatchRate, or an armed CrashAtWriteOp) apply a
//     strict prefix of the batch and crash the store, modelling power
//     loss mid-write. Every later operation fails with ErrCrashed until
//     Reopen; chain.Open then replays its write-ahead log to repair the
//     tear.
//   - Bit-rot (CorruptRate) flips one bit in a copy of a read value. The
//     layers above detect it structurally (RLP decode, WAL checksums)
//     and either retry or fall back to re-import/resync.
//   - Stalls (StallEvery/Stall) sleow individual operations down without
//     failing them, for watchdog and latency testing.
package faultkv

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"forkwatch/internal/db"
)

// ErrInjected is the transient injected I/O failure. db.IsTransient
// returns true for it, so db.Retry will re-attempt the operation.
var ErrInjected error = injectedError{}

type injectedError struct{}

func (injectedError) Error() string   { return "faultkv: injected I/O error" }
func (injectedError) Transient() bool { return true }

// ErrCrashed reports an operation against a crashed (torn) store. It is
// not transient: the caller must Reopen and run recovery.
var ErrCrashed = errors.New("faultkv: store crashed (reopen and recover)")

// Faults is the injection plan. The zero value injects nothing.
type Faults struct {
	// Seed drives every fault decision; equal seeds reproduce runs.
	Seed int64
	// ReadErrRate is the probability a Get/Has fails with ErrInjected.
	ReadErrRate float64
	// WriteErrRate is the probability a Put/Delete/Batch.Write fails
	// atomically (nothing applied) with ErrInjected.
	WriteErrRate float64
	// TornBatchRate is the probability a Batch.Write applies only a
	// random strict prefix of its operations and crashes the store.
	TornBatchRate float64
	// CorruptRate is the probability a successful Get returns a copy of
	// the value with one bit flipped (read-path bit-rot).
	CorruptRate float64
	// StallEvery injects a Stall-long sleep into every Nth operation
	// (0 disables).
	StallEvery int
	// Stall is the duration of an injected stall.
	Stall time.Duration
}

// Enabled reports whether the plan injects any fault at all.
func (f Faults) Enabled() bool {
	return f.ReadErrRate > 0 || f.WriteErrRate > 0 || f.TornBatchRate > 0 ||
		f.CorruptRate > 0 || (f.StallEvery > 0 && f.Stall > 0)
}

// journalCap bounds the recorded fault decisions.
const journalCap = 4096

// Event is one journaled fault decision.
type Event struct {
	// Seq is the value of the global operation counter when the fault
	// fired.
	Seq uint64
	// Op names the operation ("get", "has", "put", "delete", "batch").
	Op string
	// Kind names the fault ("ioerr", "bitrot", "torn", "stall",
	// "crashed", "reopen").
	Kind string
	// Key is the first byte of the affected key (the schema namespace
	// prefix), 0 for batch-level events.
	Key byte
	// TornAt is, for torn batches, how many operations were applied
	// before the tear.
	TornAt int
}

// KV decorates an inner store with the fault plan. Safe for concurrent
// use; fault decisions are serialized so runs stay deterministic given a
// deterministic operation order.
type KV struct {
	inner db.KV
	f     Faults

	mu           sync.Mutex
	rng          *rand.Rand
	ops          uint64 // all operations, for StallEvery
	writeOps     uint64 // applied write operations, for CrashAtWriteOp
	crashAtWrite uint64 // crash when writeOps would reach this (0 = unarmed)
	crashed      bool
	disabled     bool // random injection paused (crashes still honoured)
	journal      []Event
}

// Wrap decorates inner with the fault plan.
func Wrap(inner db.KV, f Faults) *KV {
	return &KV{inner: inner, f: f, rng: rand.New(rand.NewSource(f.Seed))}
}

// Inner returns the wrapped store.
func (k *KV) Inner() db.KV { return k.inner }

// SetEnabled toggles the random fault plan. While disabled, no stalls,
// errors, tears or bit-rot are injected and the seeded RNG is not drawn,
// but explicit crashes (Crash, CrashAtWriteOp) and an already-crashed
// state are still honoured. Chaos harnesses disable injection around
// bootstrap writes (genesis) that have no recovery path, then enable it
// at a deterministic point so runs stay reproducible.
func (k *KV) SetEnabled(on bool) {
	k.mu.Lock()
	k.disabled = !on
	k.mu.Unlock()
}

// Journal returns a copy of the recorded fault decisions.
func (k *KV) Journal() []Event {
	k.mu.Lock()
	defer k.mu.Unlock()
	return append([]Event(nil), k.journal...)
}

// WriteOps returns the number of write operations applied so far (batch
// operations count individually). Use with CrashAtWriteOp to land a
// crash mid-batch deterministically.
func (k *KV) WriteOps() uint64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.writeOps
}

// CrashAtWriteOp arms a crash: the n-th write operation from the start of
// the store's life (see WriteOps for the current count) fails with
// ErrCrashed instead of applying, tearing any batch it lands inside. Every
// subsequent operation fails with ErrCrashed until Reopen.
func (k *KV) CrashAtWriteOp(n uint64) {
	k.mu.Lock()
	k.crashAtWrite = n
	k.mu.Unlock()
}

// Crash kills the store immediately: every operation fails with
// ErrCrashed until Reopen.
func (k *KV) Crash() {
	k.mu.Lock()
	k.setCrashed("crash")
	k.mu.Unlock()
}

// Crashed reports whether the store is dead.
func (k *KV) Crashed() bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.crashed
}

// Reopen models the process restarting with the same underlying medium:
// the crash flag clears and any armed crash point is disarmed. Whatever
// half-applied state the tear left behind is still there — running
// recovery (chain.Open) is the caller's job.
func (k *KV) Reopen() {
	k.mu.Lock()
	k.crashed = false
	k.crashAtWrite = 0
	k.record(Event{Seq: k.ops, Op: "reopen", Kind: "reopen"})
	k.mu.Unlock()
}

// record appends ev to the bounded journal. Caller holds k.mu.
func (k *KV) record(ev Event) {
	if len(k.journal) < journalCap {
		k.journal = append(k.journal, ev)
	}
}

// setCrashed marks the store dead. Caller holds k.mu.
func (k *KV) setCrashed(op string) {
	if !k.crashed {
		k.crashed = true
		k.record(Event{Seq: k.ops, Op: op, Kind: "crashed"})
	}
}

func keyByte(key []byte) byte {
	if len(key) == 0 {
		return 0
	}
	return key[0]
}

// step runs the common per-operation bookkeeping: stall injection and the
// crashed check. Caller holds k.mu. Returns ErrCrashed when dead.
func (k *KV) step(op string, key []byte) error {
	k.ops++
	if k.crashed {
		return ErrCrashed
	}
	if !k.disabled && k.f.StallEvery > 0 && k.f.Stall > 0 && k.ops%uint64(k.f.StallEvery) == 0 {
		k.record(Event{Seq: k.ops, Op: op, Kind: "stall", Key: keyByte(key)})
		k.mu.Unlock()
		time.Sleep(k.f.Stall)
		k.mu.Lock()
		if k.crashed { // crashed while stalled
			return ErrCrashed
		}
	}
	return nil
}

// readFault decides a read-path fault. Caller holds k.mu.
func (k *KV) readFault(op string, key []byte) error {
	if !k.disabled && k.f.ReadErrRate > 0 && k.rng.Float64() < k.f.ReadErrRate {
		k.record(Event{Seq: k.ops, Op: op, Kind: "ioerr", Key: keyByte(key)})
		return ErrInjected
	}
	return nil
}

// Get implements db.KV.
func (k *KV) Get(key []byte) ([]byte, bool, error) {
	k.mu.Lock()
	if err := k.step("get", key); err != nil {
		k.mu.Unlock()
		return nil, false, err
	}
	if err := k.readFault("get", key); err != nil {
		k.mu.Unlock()
		return nil, false, err
	}
	rot := !k.disabled && k.f.CorruptRate > 0 && k.rng.Float64() < k.f.CorruptRate
	var flip int
	if rot {
		flip = k.rng.Int()
		k.record(Event{Seq: k.ops, Op: "get", Kind: "bitrot", Key: keyByte(key)})
	}
	k.mu.Unlock()

	v, ok, err := k.inner.Get(key)
	if err != nil || !ok || !rot || len(v) == 0 {
		return v, ok, err
	}
	// Bit-rot: flip one deterministic bit in a copy (the inner store's
	// slice must stay pristine — the rot is on the read path).
	rotted := append([]byte(nil), v...)
	bit := flip % (len(rotted) * 8)
	rotted[bit/8] ^= 1 << (bit % 8)
	return rotted, true, nil
}

// Has implements db.KV.
func (k *KV) Has(key []byte) (bool, error) {
	k.mu.Lock()
	if err := k.step("has", key); err != nil {
		k.mu.Unlock()
		return false, err
	}
	if err := k.readFault("has", key); err != nil {
		k.mu.Unlock()
		return false, err
	}
	k.mu.Unlock()
	return k.inner.Has(key)
}

// writeFault decides the fate of the next write operation. Caller holds
// k.mu. Returns ErrCrashed for an armed crash landing on this write,
// ErrInjected for a transient failure, nil to proceed (and counts the
// write as applied).
func (k *KV) writeFault(op string, key []byte) error {
	if k.crashAtWrite != 0 && k.writeOps+1 >= k.crashAtWrite {
		k.setCrashed(op)
		return ErrCrashed
	}
	if !k.disabled && k.f.WriteErrRate > 0 && k.rng.Float64() < k.f.WriteErrRate {
		k.record(Event{Seq: k.ops, Op: op, Kind: "ioerr", Key: keyByte(key)})
		return ErrInjected
	}
	k.writeOps++
	return nil
}

// Put implements db.KV.
func (k *KV) Put(key, value []byte) error {
	k.mu.Lock()
	if err := k.step("put", key); err != nil {
		k.mu.Unlock()
		return err
	}
	if err := k.writeFault("put", key); err != nil {
		k.mu.Unlock()
		return err
	}
	k.mu.Unlock()
	return k.inner.Put(key, value)
}

// Delete implements db.KV.
func (k *KV) Delete(key []byte) error {
	k.mu.Lock()
	if err := k.step("delete", key); err != nil {
		k.mu.Unlock()
		return err
	}
	if err := k.writeFault("delete", key); err != nil {
		k.mu.Unlock()
		return err
	}
	k.mu.Unlock()
	return k.inner.Delete(key)
}

// Stats implements db.KV.
func (k *KV) Stats() db.Stats { return k.inner.Stats() }

// NewBatch implements db.KV. The batch buffers operations locally so a
// torn Write can apply a strict prefix through the inner store.
func (k *KV) NewBatch() db.Batch { return &faultBatch{kv: k} }

type faultOp struct {
	key   []byte
	value []byte
	del   bool
}

type faultBatch struct {
	kv   *KV
	ops  []faultOp
	size int
}

func (b *faultBatch) Put(key, value []byte) {
	b.ops = append(b.ops, faultOp{key: append([]byte(nil), key...), value: value})
	b.size += len(value)
}

func (b *faultBatch) Delete(key []byte) {
	b.ops = append(b.ops, faultOp{key: append([]byte(nil), key...), del: true})
}

func (b *faultBatch) Len() int       { return len(b.ops) }
func (b *faultBatch) ValueSize() int { return b.size }

func (b *faultBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

// Write implements db.Batch. Outcomes, in decision order:
//
//  1. crashed store: ErrCrashed, nothing applied;
//  2. armed crash landing inside this batch: the operations before the
//     crash point are applied individually (the tear), then ErrCrashed;
//  3. transient write error: ErrInjected, nothing applied;
//  4. torn-batch roll: a random strict prefix applies, then the store
//     crashes (ErrCrashed);
//  5. otherwise the whole batch applies atomically via the inner batch.
func (b *faultBatch) Write() error {
	k := b.kv
	if len(b.ops) == 0 {
		return nil
	}

	k.mu.Lock()
	if err := k.step("batch", nil); err != nil {
		k.mu.Unlock()
		return err
	}
	// Armed crash landing within this batch's span?
	tearAt := -1
	if k.crashAtWrite != 0 && k.writeOps+uint64(len(b.ops)) >= k.crashAtWrite {
		tearAt = int(k.crashAtWrite - k.writeOps - 1) // ops applied before the tear
		if tearAt < 0 {
			tearAt = 0
		}
	} else if !k.disabled && k.f.WriteErrRate > 0 && k.rng.Float64() < k.f.WriteErrRate {
		k.record(Event{Seq: k.ops, Op: "batch", Kind: "ioerr"})
		k.mu.Unlock()
		return ErrInjected
	} else if !k.disabled && k.f.TornBatchRate > 0 && k.rng.Float64() < k.f.TornBatchRate {
		tearAt = k.rng.Intn(len(b.ops)) // strict prefix: at least one op lost
	}

	if tearAt >= 0 {
		applied := 0
		var err error
		for _, op := range b.ops[:tearAt] {
			if op.del {
				err = k.inner.Delete(op.key)
			} else {
				err = k.inner.Put(op.key, op.value)
			}
			if err != nil {
				break
			}
			applied++
		}
		k.writeOps += uint64(applied)
		k.record(Event{Seq: k.ops, Op: "batch", Kind: "torn", TornAt: applied})
		k.setCrashed("batch")
		k.mu.Unlock()
		return ErrCrashed
	}

	k.writeOps += uint64(len(b.ops))
	k.mu.Unlock()

	inner := k.inner.NewBatch()
	for _, op := range b.ops {
		if op.del {
			inner.Delete(op.key)
		} else {
			inner.Put(op.key, op.value)
		}
	}
	if err := inner.Write(); err != nil {
		return err
	}
	b.Reset()
	return nil
}
