package faultkv

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"
	"time"

	"forkwatch/internal/db"
)

// workload runs a fixed deterministic operation sequence against the
// store and returns how many operations failed.
func workload(kv *KV) int {
	failures := 0
	for i := 0; i < 400; i++ {
		key := []byte{byte(i), byte(i >> 8)}
		val := bytes.Repeat([]byte{byte(i)}, 8)
		switch i % 4 {
		case 0:
			if err := kv.Put(key, val); err != nil {
				failures++
			}
		case 1:
			if _, _, err := kv.Get(key); err != nil {
				failures++
			}
		case 2:
			b := kv.NewBatch()
			b.Put(key, val)
			b.Put(append(key, 0xff), val)
			if err := b.Write(); err != nil {
				failures++
			}
		case 3:
			if _, err := kv.Has(key); err != nil {
				failures++
			}
		}
		if kv.Crashed() {
			kv.Reopen()
		}
	}
	return failures
}

func TestDeterminism(t *testing.T) {
	f := Faults{Seed: 42, ReadErrRate: 0.2, WriteErrRate: 0.2, TornBatchRate: 0.1, CorruptRate: 0.05}
	a := Wrap(db.NewMemDB(), f)
	b := Wrap(db.NewMemDB(), f)
	failsA, failsB := workload(a), workload(b)
	if failsA != failsB {
		t.Fatalf("same seed diverged: %d vs %d failures", failsA, failsB)
	}
	if failsA == 0 {
		t.Fatal("fault plan injected nothing")
	}
	ja, jb := a.Journal(), b.Journal()
	if !reflect.DeepEqual(ja, jb) {
		t.Fatalf("same seed produced different journals: %d vs %d events", len(ja), len(jb))
	}
	if len(ja) == 0 {
		t.Fatal("no journaled events")
	}

	c := Wrap(db.NewMemDB(), Faults{Seed: 43, ReadErrRate: 0.2, WriteErrRate: 0.2, TornBatchRate: 0.1, CorruptRate: 0.05})
	workload(c)
	if reflect.DeepEqual(ja, c.Journal()) {
		t.Fatal("different seeds produced identical journals")
	}
}

func TestErrorClassification(t *testing.T) {
	if !db.IsTransient(ErrInjected) {
		t.Fatal("ErrInjected must be transient (db.Retry absorbs it)")
	}
	if db.IsTransient(ErrCrashed) {
		t.Fatal("ErrCrashed must not be transient (requires reopen+recovery)")
	}
	wrapped := fmt.Errorf("put failed: %w", ErrInjected)
	if !db.IsTransient(wrapped) {
		t.Fatal("wrapped ErrInjected must stay transient")
	}
}

func TestTornBatchAppliesStrictPrefix(t *testing.T) {
	inner := db.NewMemDB()
	kv := Wrap(inner, Faults{Seed: 1, TornBatchRate: 1})

	b := kv.NewBatch()
	const n = 10
	for i := 0; i < n; i++ {
		b.Put([]byte{byte(i)}, []byte{0xaa, byte(i)})
	}
	if err := b.Write(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn batch returned %v, want ErrCrashed", err)
	}
	if !kv.Crashed() {
		t.Fatal("store must be crashed after a tear")
	}

	// A strict prefix applied: 0..tornAt-1 present, the rest absent.
	applied := 0
	for i := 0; i < n; i++ {
		ok, err := inner.Has([]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			if i != applied {
				t.Fatalf("non-prefix application: key %d present after gap", i)
			}
			applied++
		}
	}
	if applied >= n {
		t.Fatalf("tear applied all %d operations", n)
	}

	var torn *Event
	for _, ev := range kv.Journal() {
		if ev.Kind == "torn" {
			e := ev
			torn = &e
		}
	}
	if torn == nil {
		t.Fatal("no torn event journaled")
	}
	if torn.TornAt != applied {
		t.Fatalf("journal says %d ops applied, store has %d", torn.TornAt, applied)
	}

	// Everything fails until Reopen.
	if _, _, err := kv.Get([]byte{0}); !errors.Is(err, ErrCrashed) {
		t.Fatalf("read on crashed store returned %v, want ErrCrashed", err)
	}
	if err := kv.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write on crashed store returned %v, want ErrCrashed", err)
	}
	kv.Reopen()
	if kv.Crashed() {
		t.Fatal("Reopen did not clear the crash")
	}
	if err := kv.Put([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
}

func TestCrashAtWriteOp(t *testing.T) {
	inner := db.NewMemDB()
	kv := Wrap(inner, Faults{Seed: 7})

	// Three single writes land, then arm a crash on write op 6: a 5-op
	// batch starting at op 4 must tear after exactly 2 applied ops.
	for i := 0; i < 3; i++ {
		if err := kv.Put([]byte{0xf0, byte(i)}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if got := kv.WriteOps(); got != 3 {
		t.Fatalf("WriteOps = %d, want 3", got)
	}
	kv.CrashAtWriteOp(6)

	b := kv.NewBatch()
	for i := 0; i < 5; i++ {
		b.Put([]byte{0xb0, byte(i)}, []byte{2})
	}
	if err := b.Write(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("armed batch returned %v, want ErrCrashed", err)
	}
	for i := 0; i < 5; i++ {
		ok, _ := inner.Has([]byte{0xb0, byte(i)})
		if want := i < 2; ok != want {
			t.Fatalf("batch op %d applied=%v, want %v", i, ok, want)
		}
	}
	if got := kv.WriteOps(); got != 5 {
		t.Fatalf("WriteOps after tear = %d, want 5", got)
	}

	// Reopen disarms: the same write sequence then succeeds.
	kv.Reopen()
	if err := kv.Put([]byte("after"), []byte("ok")); err != nil {
		t.Fatalf("write after reopen: %v", err)
	}
}

func TestBitRotFlipsOneBitInCopy(t *testing.T) {
	inner := db.NewMemDB()
	orig := []byte{0x00, 0x11, 0x22, 0x33}
	if err := inner.Put([]byte("k"), append([]byte(nil), orig...)); err != nil {
		t.Fatal(err)
	}
	kv := Wrap(inner, Faults{Seed: 3, CorruptRate: 1})
	got, ok, err := kv.Get([]byte("k"))
	if err != nil || !ok {
		t.Fatalf("Get = %v, %v", ok, err)
	}
	diff := 0
	for i := range got {
		b := got[i] ^ orig[i]
		for ; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit-rot flipped %d bits, want exactly 1", diff)
	}
	// The inner store's value must be pristine (rot is read-path only).
	stored, _, _ := inner.Get([]byte("k"))
	if !bytes.Equal(stored, orig) {
		t.Fatal("bit-rot mutated the stored value")
	}
}

func TestWriteErrAtomic(t *testing.T) {
	inner := db.NewMemDB()
	kv := Wrap(inner, Faults{Seed: 5, WriteErrRate: 1})
	if err := kv.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrInjected) {
		t.Fatalf("Put returned %v, want ErrInjected", err)
	}
	b := kv.NewBatch()
	b.Put([]byte("a"), []byte("1"))
	b.Put([]byte("b"), []byte("2"))
	if err := b.Write(); !errors.Is(err, ErrInjected) {
		t.Fatalf("batch returned %v, want ErrInjected", err)
	}
	if kv.Crashed() {
		t.Fatal("injected write error must not crash the store")
	}
	if n := inner.Len(); n != 0 {
		t.Fatalf("failed writes leaked %d keys into the store", n)
	}
}

func TestStall(t *testing.T) {
	kv := Wrap(db.NewMemDB(), Faults{Seed: 9, StallEvery: 2, Stall: 5 * time.Millisecond})
	start := time.Now()
	for i := 0; i < 4; i++ {
		if err := kv.Put([]byte{byte(i)}, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("4 ops with stall-every-2 took %v, want >= 10ms", d)
	}
	stalls := 0
	for _, ev := range kv.Journal() {
		if ev.Kind == "stall" {
			stalls++
		}
	}
	if stalls != 2 {
		t.Fatalf("journaled %d stalls, want 2", stalls)
	}
}

func TestParseSpecRoundTrip(t *testing.T) {
	f, err := ParseSpec("seed=42, readerr=0.2,writeerr=0.1,torn=0.01,corrupt=0.001,stallevery=1000,stall=1ms")
	if err != nil {
		t.Fatal(err)
	}
	want := Faults{Seed: 42, ReadErrRate: 0.2, WriteErrRate: 0.1, TornBatchRate: 0.01,
		CorruptRate: 0.001, StallEvery: 1000, Stall: time.Millisecond}
	if f != want {
		t.Fatalf("ParseSpec = %+v, want %+v", f, want)
	}
	if !f.Enabled() {
		t.Fatal("parsed plan should be enabled")
	}

	empty, err := ParseSpec("")
	if err != nil {
		t.Fatal(err)
	}
	if empty.Enabled() {
		t.Fatal("empty spec must disable injection")
	}

	for _, bad := range []string{"readerr=1.5", "bogus=1", "seed", "torn=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted invalid input", bad)
		}
	}
}

func TestRetryAbsorbsInjectedErrors(t *testing.T) {
	inner := db.NewMemDB()
	// 50% write faults: P(10 straight failures) ~ 1e-3 per op; the seed
	// below is fixed, so the run either always passes or always fails.
	kv := db.NewRetry(Wrap(inner, Faults{Seed: 11, WriteErrRate: 0.5, ReadErrRate: 0.5}), db.DefaultRetryAttempts)
	for i := 0; i < 50; i++ {
		key := []byte{0x70, byte(i)}
		if err := kv.Put(key, []byte{byte(i)}); err != nil {
			t.Fatalf("Put %d through retry: %v", i, err)
		}
		v, ok, err := kv.Get(key)
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("Get %d through retry: %v %v %v", i, v, ok, err)
		}
	}
}

// countingKV wraps a faultkv.KV and counts Put attempts, to observe how
// often the retry layer re-issues an operation.
type countingKV struct {
	*KV
	puts int
}

func (c *countingKV) Put(key, value []byte) error {
	c.puts++
	return c.KV.Put(key, value)
}

func TestRetryPassesCrashThrough(t *testing.T) {
	fkv := Wrap(db.NewMemDB(), Faults{Seed: 13})
	counter := &countingKV{KV: fkv}
	kv := db.NewRetry(counter, db.DefaultRetryAttempts)
	fkv.Crash()
	if err := kv.Put([]byte("k"), []byte("v")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("Put on crashed store through retry returned %v, want ErrCrashed", err)
	}
	if counter.puts != 1 {
		t.Fatalf("retry issued %d attempts against a crashed store, want 1 (fatal errors pass through)", counter.puts)
	}
}
