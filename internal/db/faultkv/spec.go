package faultkv

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a comma-separated key=value storage-fault
// specification, the format behind cmd/forksim's -storage-faults flag:
//
//	seed=42,readerr=0.2,writeerr=0.2,torn=0.01,corrupt=0.001,stallevery=1000,stall=1ms
//
// Keys: seed (int), readerr/writeerr/torn/corrupt (probabilities in
// [0,1]), stallevery (operations between stalls, 0 = never), stall
// (duration). Unknown keys are rejected.
func ParseSpec(spec string) (Faults, error) {
	var f Faults
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return f, fmt.Errorf("faultkv: bad spec element %q (want key=value)", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			f.Seed, err = strconv.ParseInt(val, 10, 64)
		case "readerr":
			f.ReadErrRate, err = parseRate(val)
		case "writeerr":
			f.WriteErrRate, err = parseRate(val)
		case "torn":
			f.TornBatchRate, err = parseRate(val)
		case "corrupt":
			f.CorruptRate, err = parseRate(val)
		case "stallevery":
			f.StallEvery, err = strconv.Atoi(val)
		case "stall":
			f.Stall, err = time.ParseDuration(val)
		default:
			return f, fmt.Errorf("faultkv: unknown spec key %q", key)
		}
		if err != nil {
			return f, fmt.Errorf("faultkv: bad value for %s: %v", key, err)
		}
	}
	return f, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", r)
	}
	return r, nil
}

// String summarises the plan for logs.
func (f Faults) String() string {
	return fmt.Sprintf("seed=%d readerr=%.3f writeerr=%.3f torn=%.4f corrupt=%.4f stallevery=%d stall=%v",
		f.Seed, f.ReadErrRate, f.WriteErrRate, f.TornBatchRate, f.CorruptRate, f.StallEvery, f.Stall)
}
