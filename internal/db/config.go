package db

import "fmt"

// Backend names accepted by Config/Open.
const (
	// BackendMem is the sharded in-memory store.
	BackendMem = "mem"
	// BackendCached is the sharded in-memory store behind a write-through
	// LRU cache (exercises the cache path and reports hit/miss stats).
	BackendCached = "cached"
)

// Config selects and parameterises a storage backend. The zero value means
// BackendMem with default sharding — every existing caller keeps its
// behaviour without opting into anything.
type Config struct {
	// Backend is one of the Backend* constants; empty selects BackendMem.
	Backend string
	// Shards overrides the MemDB shard count (0 = DefaultShards).
	Shards int
	// CacheEntries sizes the LRU for BackendCached (0 = DefaultCacheEntries).
	CacheEntries int
}

// DefaultCacheEntries is the LRU capacity when Config.CacheEntries is 0:
// large enough to hold the working set of a full-fidelity simulated day.
const DefaultCacheEntries = 1 << 16

// Open constructs the configured store.
func Open(cfg Config) (KV, error) {
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	switch cfg.Backend {
	case "", BackendMem:
		return NewMemDBShards(shards), nil
	case BackendCached:
		entries := cfg.CacheEntries
		if entries <= 0 {
			entries = DefaultCacheEntries
		}
		return NewCache(NewMemDBShards(shards), entries), nil
	default:
		return nil, fmt.Errorf("db: unknown backend %q", cfg.Backend)
	}
}
