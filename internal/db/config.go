package db

import "fmt"

// Backend names accepted by Config/Open.
const (
	// BackendMem is the sharded in-memory store.
	BackendMem = "mem"
	// BackendCached is the sharded in-memory store behind a write-through
	// LRU cache (exercises the cache path and reports hit/miss stats).
	BackendCached = "cached"
	// BackendDisk is the log-structured file store (internal/db/diskdb).
	// Requires DataDir; the diskdb package must be linked into the binary
	// (it registers itself via RegisterDiskBackend in its init).
	BackendDisk = "disk"
)

// Config selects and parameterises a storage backend. The zero value means
// BackendMem with default sharding — every existing caller keeps its
// behaviour without opting into anything.
type Config struct {
	// Backend is one of the Backend* constants; empty selects BackendMem.
	Backend string
	// Shards overrides the MemDB shard count (0 = DefaultShards). Only
	// meaningful for the mem and cached backends.
	Shards int
	// CacheEntries sizes the LRU for BackendCached (0 = DefaultCacheEntries).
	CacheEntries int
	// DataDir is the directory holding BackendDisk's segment files. It is
	// created if missing. Required for disk, rejected for the in-memory
	// backends.
	DataDir string
}

// DefaultCacheEntries is the LRU capacity when Config.CacheEntries is 0:
// large enough to hold the working set of a full-fidelity simulated day.
const DefaultCacheEntries = 1 << 16

// openDisk is installed by the diskdb package's init (RegisterDiskBackend):
// the indirection keeps db free of a dependency on its own sub-package.
var openDisk func(Config) (KV, error)

// RegisterDiskBackend installs the opener Open uses for BackendDisk.
// Called from diskdb's init; not for application code.
func RegisterDiskBackend(open func(Config) (KV, error)) { openDisk = open }

// Validate rejects Config field combinations that would otherwise be
// silently ignored, naming the offending field and what it applies to.
func (cfg Config) Validate() error {
	switch cfg.Backend {
	case "", BackendMem:
		if cfg.DataDir != "" {
			return fmt.Errorf("db: the mem backend is not persistent and takes no DataDir %q (use Backend: %q)", cfg.DataDir, BackendDisk)
		}
		if cfg.CacheEntries != 0 {
			return fmt.Errorf("db: CacheEntries (%d) only applies to the %q backend, not mem", cfg.CacheEntries, BackendCached)
		}
	case BackendCached:
		if cfg.DataDir != "" {
			return fmt.Errorf("db: the cached backend is not persistent and takes no DataDir %q (use Backend: %q)", cfg.DataDir, BackendDisk)
		}
	case BackendDisk:
		if cfg.DataDir == "" {
			return fmt.Errorf("db: the disk backend requires a DataDir")
		}
		if cfg.Shards != 0 {
			return fmt.Errorf("db: Shards (%d) is a mem/cached knob; the disk backend does not shard", cfg.Shards)
		}
		if cfg.CacheEntries != 0 {
			return fmt.Errorf("db: CacheEntries (%d) only applies to the %q backend; layering the cache over disk is not supported", cfg.CacheEntries, BackendCached)
		}
	default:
		return fmt.Errorf("db: unknown backend %q (known: %q, %q, %q)", cfg.Backend, BackendMem, BackendCached, BackendDisk)
	}
	return nil
}

// Open constructs the configured store after validating the Config.
func Open(cfg Config) (KV, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	shards := cfg.Shards
	if shards <= 0 {
		shards = DefaultShards
	}
	switch cfg.Backend {
	case "", BackendMem:
		return NewMemDBShards(shards), nil
	case BackendCached:
		entries := cfg.CacheEntries
		if entries <= 0 {
			entries = DefaultCacheEntries
		}
		return NewCache(NewMemDBShards(shards), entries), nil
	case BackendDisk:
		if openDisk == nil {
			return nil, fmt.Errorf("db: disk backend not linked (import forkwatch/internal/db/diskdb)")
		}
		return openDisk(cfg)
	default: // unreachable: Validate rejected it
		return nil, fmt.Errorf("db: unknown backend %q", cfg.Backend)
	}
}
