// Package dbfs is the narrow filesystem seam the disk backend writes
// through: an FS of append-only, random-read files plus the real OSFS
// implementation. It lives apart from diskdb so the faultfile injection
// layer can wrap the seam without importing the store it is testing.
package dbfs

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// FS is the narrow filesystem surface diskdb writes through. The real
// implementation is OSFS; the faultfile package wraps any FS with
// deterministic injected failures (short writes, torn appends, fsync
// errors, read bit-rot, crash-at-op), which is how diskdb's recovery
// paths are proven.
type FS interface {
	// Open returns the named file, creating it empty if absent.
	Open(name string) (File, error)
	// Remove deletes the named file (compaction drops stale segments).
	Remove(name string) error
	// List returns the names of all files present, in any order.
	List() ([]string, error)
}

// File is one segment file: random-access reads, append-only writes, and
// the durability/repair calls recovery relies on.
type File interface {
	io.ReaderAt
	// Append writes p at the current end of the file and returns how many
	// bytes landed. A short count with a non-nil error models a torn
	// write: the prefix is on the medium.
	Append(p []byte) (int, error)
	// Truncate cuts the file to size bytes (torn-tail repair).
	Truncate(size int64) error
	// Sync flushes appended data to the medium; a record is considered
	// durable only after Sync returns nil.
	Sync() error
	// Size returns the current file length in bytes.
	Size() (int64, error)
	// Close releases the handle.
	Close() error
}

// OSFS is the real filesystem rooted at one directory.
type OSFS struct {
	dir string
}

// NewOSFS roots an FS at dir, creating the directory if needed.
func NewOSFS(dir string) (*OSFS, error) {
	if dir == "" {
		return nil, fmt.Errorf("dbfs: empty data directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dbfs: creating data dir: %w", err)
	}
	return &OSFS{dir: dir}, nil
}

// Dir returns the root directory.
func (fs *OSFS) Dir() string { return fs.dir }

// Open implements FS.
func (fs *OSFS) Open(name string) (File, error) {
	f, err := os.OpenFile(filepath.Join(fs.dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	return &osFile{f: f, size: st.Size()}, nil
}

// Remove implements FS.
func (fs *OSFS) Remove(name string) error {
	return os.Remove(filepath.Join(fs.dir, name))
}

// List implements FS.
func (fs *OSFS) List() ([]string, error) {
	entries, err := os.ReadDir(fs.dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

// osFile tracks the append offset itself (WriteAt at the tracked size)
// so Truncate and Append compose without O_APPEND's end-of-file races.
type osFile struct {
	f  *os.File
	mu sync.Mutex
	// size is the logical end of the file: where the next Append lands.
	size int64
}

func (o *osFile) ReadAt(p []byte, off int64) (int, error) { return o.f.ReadAt(p, off) }

func (o *osFile) Append(p []byte) (int, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	n, err := o.f.WriteAt(p, o.size)
	o.size += int64(n)
	return n, err
}

func (o *osFile) Truncate(size int64) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if err := o.f.Truncate(size); err != nil {
		return err
	}
	o.size = size
	return nil
}

func (o *osFile) Sync() error { return o.f.Sync() }

func (o *osFile) Size() (int64, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.size, nil
}

func (o *osFile) Close() error { return o.f.Close() }
