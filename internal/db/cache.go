package db

import (
	"container/list"
	"sync"
)

// Cache is a write-through LRU cache decorating any KV backend. Reads
// served from the cache count as hits; reads that fall through to the
// backend count as misses (whatever the backend then reports). Writes go
// to both the cache and the backend, so the backend is always complete —
// the cache can be dropped or resized at any time without losing data.
//
// Errors never poison the cache: a write is cached only after the backend
// accepted it, and a read that fails in the backend caches nothing, so a
// store behind injected faults (see faultkv) stays coherent with its
// cache across retries.
//
// For the in-memory backend the cache is a bench vehicle for measuring
// locality (trie node reuse across commits); for future disk or remote
// backends it is the layer that makes them viable.
type Cache struct {
	mu      sync.Mutex
	backend KV
	cap     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	reads   uint64
	writes  uint64
	deletes uint64
	hits    uint64
	misses  uint64
}

type cacheEntry struct {
	key   string
	value []byte
}

// NewCache wraps backend with a write-through LRU holding up to capacity
// entries (minimum 1).
func NewCache(backend KV, capacity int) *Cache {
	if capacity < 1 {
		capacity = 1
	}
	return &Cache{
		backend: backend,
		cap:     capacity,
		entries: make(map[string]*list.Element, capacity),
		order:   list.New(),
	}
}

// Backend returns the decorated store.
func (c *Cache) Backend() KV { return c.backend }

// Get implements KV.
func (c *Cache) Get(key []byte) ([]byte, bool, error) {
	c.mu.Lock()
	c.reads++
	if el, ok := c.entries[string(key)]; ok {
		c.hits++
		c.order.MoveToFront(el)
		v := el.Value.(*cacheEntry).value
		c.mu.Unlock()
		return v, true, nil
	}
	c.misses++
	c.mu.Unlock()

	v, ok, err := c.backend.Get(key)
	if err != nil {
		return nil, false, err
	}
	if ok {
		c.mu.Lock()
		c.insert(string(key), v)
		c.mu.Unlock()
	}
	return v, ok, nil
}

// Has implements KV.
func (c *Cache) Has(key []byte) (bool, error) {
	c.mu.Lock()
	_, ok := c.entries[string(key)]
	c.mu.Unlock()
	if ok {
		return true, nil
	}
	return c.backend.Has(key)
}

// Put implements KV (write-through; the cache is updated only after the
// backend accepted the write).
func (c *Cache) Put(key, value []byte) error {
	if err := c.backend.Put(key, value); err != nil {
		return err
	}
	c.mu.Lock()
	c.writes++
	c.insert(string(key), value)
	c.mu.Unlock()
	return nil
}

// Delete implements KV (write-through). The cached entry is dropped even
// when the backend errors: serving a value the backend may no longer hold
// would be worse than a spurious miss.
func (c *Cache) Delete(key []byte) error {
	c.mu.Lock()
	c.deletes++
	if el, ok := c.entries[string(key)]; ok {
		c.order.Remove(el)
		delete(c.entries, string(key))
	}
	c.mu.Unlock()
	return c.backend.Delete(key)
}

// insert adds or refreshes an entry, evicting the LRU tail past capacity.
// Caller holds c.mu.
func (c *Cache) insert(key string, value []byte) {
	if el, ok := c.entries[key]; ok {
		el.Value.(*cacheEntry).value = value
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&cacheEntry{key: key, value: value})
	for c.order.Len() > c.cap {
		tail := c.order.Back()
		c.order.Remove(tail)
		delete(c.entries, tail.Value.(*cacheEntry).key)
	}
}

// NewBatch implements KV: the batch queues against the backend and
// populates the cache after a successful Write, so freshly committed nodes
// (which the next block's execution immediately resolves) are warm. A
// failed Write leaves the cache untouched — matching the backend, which
// applied nothing (or, after a crash/tear, is about to be recovered).
func (c *Cache) NewBatch() Batch { return &cacheBatch{cache: c, inner: c.backend.NewBatch()} }

// Stats implements KV: the cache's own counters, with Entries reporting
// the cached (not backend) population.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Reads:   c.reads,
		Writes:  c.writes,
		Deletes: c.deletes,
		Hits:    c.hits,
		Misses:  c.misses,
		Entries: c.order.Len(),
	}
}

type cacheBatch struct {
	cache *Cache
	inner Batch
	ops   []batchOp
}

func (b *cacheBatch) Put(key, value []byte) {
	b.inner.Put(key, value)
	b.ops = append(b.ops, batchOp{key: string(key), value: value})
}

func (b *cacheBatch) Delete(key []byte) {
	b.inner.Delete(key)
	b.ops = append(b.ops, batchOp{key: string(key), del: true})
}

func (b *cacheBatch) Len() int       { return b.inner.Len() }
func (b *cacheBatch) ValueSize() int { return b.inner.ValueSize() }

func (b *cacheBatch) Write() error {
	if err := b.inner.Write(); err != nil {
		return err
	}
	c := b.cache
	c.mu.Lock()
	for _, op := range b.ops {
		if op.del {
			c.deletes++
			if el, ok := c.entries[op.key]; ok {
				c.order.Remove(el)
				delete(c.entries, op.key)
			}
		} else {
			c.writes++
			c.insert(op.key, op.value)
		}
	}
	c.mu.Unlock()
	b.ops = b.ops[:0]
	return nil
}

func (b *cacheBatch) Reset() {
	b.inner.Reset()
	b.ops = b.ops[:0]
}
