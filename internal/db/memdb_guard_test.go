package db

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"
)

// snapshot flattens a MemDB into a sorted key=value list for comparison.
func snapshot(t *testing.T, m *MemDB) []string {
	t.Helper()
	var out []string
	for _, k := range m.Keys() {
		v, ok, err := m.Get(k)
		if err != nil || !ok {
			t.Fatalf("snapshot read %q: %v %v", k, ok, err)
		}
		out = append(out, string(k)+"="+string(v))
	}
	sort.Strings(out)
	return out
}

func TestWriteGuardVetoesSingleWrites(t *testing.T) {
	m := NewMemDB()
	boom := errors.New("vetoed")
	m.SetWriteGuard(func(key, value []byte, del bool) error {
		if bytes.HasPrefix(key, []byte("no-")) {
			return boom
		}
		return nil
	})
	if err := m.Put([]byte("ok"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := m.Put([]byte("no-1"), []byte("x")); !errors.Is(err, boom) {
		t.Fatalf("guarded Put returned %v", err)
	}
	if ok, _ := m.Has([]byte("no-1")); ok {
		t.Fatal("vetoed Put mutated the store")
	}
	if err := m.Delete([]byte("no-2")); !errors.Is(err, boom) {
		t.Fatalf("guarded Delete returned %v", err)
	}
	m.SetWriteGuard(nil)
	if err := m.Put([]byte("no-1"), []byte("x")); err != nil {
		t.Fatalf("Put after guard removal: %v", err)
	}
}

// TestBatchAllOrNothingUnderGuard is the regression test for torn MemDB
// batches: a veto landing on ANY operation of a batch — first, middle or
// last — must leave the store byte-identical to its pre-batch state.
func TestBatchAllOrNothingUnderGuard(t *testing.T) {
	for _, vetoIdx := range []int{0, 3, 7} {
		m := NewMemDB()
		if err := m.Put([]byte("pre"), []byte("existing")); err != nil {
			t.Fatal(err)
		}
		if err := m.Put([]byte("victim"), []byte("keep-me")); err != nil {
			t.Fatal(err)
		}
		before := snapshot(t, m)

		boom := errors.New("injected batch failure")
		seen := 0
		m.SetWriteGuard(func(key, value []byte, del bool) error {
			if seen == vetoIdx {
				seen++
				return boom
			}
			seen++
			return nil
		})

		b := m.NewBatch()
		for i := 0; i < 7; i++ {
			b.Put([]byte{'k', byte(i)}, []byte{byte(i)})
		}
		b.Delete([]byte("victim")) // op 7
		if err := b.Write(); !errors.Is(err, boom) {
			t.Fatalf("veto at %d: Write returned %v, want injected failure", vetoIdx, err)
		}

		m.SetWriteGuard(nil)
		if after := snapshot(t, m); !equalStrings(before, after) {
			t.Fatalf("veto at %d: store changed across failed batch:\nbefore %v\nafter  %v", vetoIdx, before, after)
		}
		// The batch still holds its operations (Reset only on success), so
		// a retry after the fault clears applies everything.
		if err := b.Write(); err != nil {
			t.Fatalf("veto at %d: retry after guard removal: %v", vetoIdx, err)
		}
		if ok, _ := m.Has([]byte("victim")); ok {
			t.Fatalf("veto at %d: retried batch did not apply the delete", vetoIdx)
		}
		if v, ok, _ := m.Get([]byte{'k', 6}); !ok || v[0] != 6 {
			t.Fatalf("veto at %d: retried batch did not apply the puts", vetoIdx)
		}
	}
}

// TestBatchAtomicUnderConcurrentReaders is the -race witness that a
// multi-shard batch commits as one unit even while readers are hammering
// the store (PR 6 satellite). The writer commits every generation with
// one batch that puts keyFirst as its first operation and keyLast as its
// last, with filler keys between to spread the batch across shards. Each
// reader loads keyFirst and then keyLast: because keyLast only ever
// advances inside the same atomic batch as keyFirst, the later read must
// never observe an older generation than the earlier one — a torn,
// shard-by-shard application would expose exactly that window.
func TestBatchAtomicUnderConcurrentReaders(t *testing.T) {
	m := NewMemDBShards(8)
	keyFirst := []byte("atomic-first")
	keyLast := []byte("atomic-last")

	stop := make(chan struct{})
	torn := make(chan string, 1)
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				va, okA, err := m.Get(keyFirst)
				if err != nil || !okA {
					continue // no batch committed yet
				}
				genFirst := binary.BigEndian.Uint64(va)
				vb, okB, err := m.Get(keyLast)
				if err != nil || !okB {
					select {
					case torn <- fmt.Sprintf("keyFirst at gen %d but keyLast missing", genFirst):
					default:
					}
					return
				}
				if genLast := binary.BigEndian.Uint64(vb); genLast < genFirst {
					select {
					case torn <- fmt.Sprintf("torn batch observed: keyFirst gen %d, keyLast gen %d", genFirst, genLast):
					default:
					}
					return
				}
			}
		}()
	}

	for gen := uint64(1); gen <= 2000; gen++ {
		v := binary.BigEndian.AppendUint64(nil, gen)
		b := m.NewBatch()
		b.Put(keyFirst, v)
		for i := 0; i < 6; i++ { // spread the batch across shards
			b.Put([]byte{'f', 'i', 'l', 'l', byte(i)}, v)
		}
		b.Put(keyLast, v)
		if err := b.Write(); err != nil {
			t.Fatalf("gen %d: %v", gen, err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-torn:
		t.Fatal(msg)
	default:
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
