// Package db is forkwatch's storage backbone: a minimal key-value
// abstraction every persistent layer (trie nodes, contract code, block
// bodies, receipts, chain indices) stores through.
//
// The paper's methodology is "export every block and transaction into a
// database, then join and aggregate" (§3.1); measurement pipelines at that
// scale live or die by their ingest store. forkwatch's equivalent hot path
// — trie commits and ledger persistence over the ~3.3M-block nine-month
// runs — flows through the KV interface defined here, so backends can be
// swapped (sharded memory today; disk, compression or remote stores later)
// without touching the trie, state or chain layers.
//
// Every operation can fail: the interface models a real storage device,
// not a map. The in-memory backends never return errors on their own, but
// the faultkv sub-package wraps any KV with deterministic injected I/O
// errors, torn batches, bit-rot and stalls, and the trie/state/chain
// layers above are built to survive whatever this interface surfaces.
// Transient failures (a retriable I/O hiccup) are distinguished from fatal
// ones via IsTransient; the Retry wrapper turns bounded transience into
// success so higher layers only ever see faults worth aborting over.
//
// Implementations shipping in this package:
//
//   - MemDB: a sharded, mutex-striped in-memory store (the default).
//   - Cache: a write-through LRU wrapper that decorates any KV backend
//     and tracks hit/miss statistics.
//   - Retry: a policy wrapper that retries transient errors.
//
// All implementations are safe for concurrent use unless documented
// otherwise (see NewEphemeral).
package db

import "errors"

// ErrCorrupt reports a stored record that failed an integrity check
// (checksum mismatch, undecodable payload). It is never transient:
// callers fall back to re-import or resync.
var ErrCorrupt = errors.New("db: corrupt record")

// ErrReadOnly reports a write against a store that has degraded to
// read-only after an unrepairable medium failure (a failed append whose
// truncate-repair also failed, an unwritable disk). Reads keep working;
// writes fail with this error instead of panicking, and the RPC layer
// surfaces it as a storage error (-32010) so a node can keep serving its
// archive while its disk is dying. Never transient.
var ErrReadOnly = errors.New("db: store is read-only")

// KV is the storage interface. Keys and values are arbitrary byte strings;
// implementations must not retain or mutate the caller's key slice after a
// call returns, and callers must not mutate a returned value (it may alias
// the store's copy).
type KV interface {
	// Get returns the value stored under key and whether it exists. A
	// non-nil error means the read itself failed (the existence of the
	// key is then unknown).
	Get(key []byte) ([]byte, bool, error)
	// Put stores value under key, replacing any previous value.
	Put(key, value []byte) error
	// Has reports whether key exists without counting as a data read in
	// hit/miss statistics.
	Has(key []byte) (bool, error)
	// Delete removes key. Deleting an absent key is a no-op.
	Delete(key []byte) error
	// NewBatch returns an empty write batch whose Write applies every
	// queued operation atomically: either all operations land or none do
	// (a Write that returns a transient error must leave the store
	// untouched). Only a crashed/torn device — see faultkv — may expose
	// a partially applied batch, which is exactly what the chain WAL
	// recovers from.
	NewBatch() Batch
	// Stats returns a snapshot of the store's counters.
	Stats() Stats
}

// Batch queues writes for a single atomic application. Batches are not
// safe for concurrent use; each goroutine builds its own.
type Batch interface {
	// Put queues a write. The value is retained until Write or Reset.
	Put(key, value []byte)
	// Delete queues a removal.
	Delete(key []byte)
	// Len returns the number of queued operations.
	Len() int
	// ValueSize returns the total queued value bytes (for flush
	// heuristics in future disk backends).
	ValueSize() int
	// Write applies every queued operation to the backing store and
	// resets the batch for reuse. On error nothing was applied, except
	// when the error is a crash/tear (faultkv), after which the store
	// must be reopened and recovered before further use.
	Write() error
	// Reset drops all queued operations.
	Reset()
}

// transientError is implemented by errors that are worth retrying (the
// storage equivalent of EINTR). faultkv's injected I/O errors implement
// it; crashes and corruption do not.
type transientError interface {
	Transient() bool
}

// IsTransient reports whether err (or anything it wraps) marks itself as
// a retriable storage fault.
func IsTransient(err error) bool {
	var te transientError
	return errors.As(err, &te) && te.Transient()
}

// Stats is a snapshot of a store's activity counters. Reads and writes
// count Get/Put/Delete calls (batch operations count individually); Hits
// and Misses split reads by whether the key was found — for a caching
// wrapper, by whether the cache answered without hitting the backend.
type Stats struct {
	Reads   uint64
	Writes  uint64
	Deletes uint64
	Hits    uint64
	Misses  uint64
	// Entries is the number of keys currently stored (for a Cache, the
	// number of cached entries, not the backend's).
	Entries int
	// Repairs counts recovery actions a durable backend performed while
	// opening or reading: torn tails truncated, checksum-failed records
	// skipped, uncommitted batch groups dropped. Always zero for the
	// in-memory backends.
	Repairs uint64
}

// Add returns the field-wise sum of two snapshots (for aggregating the
// per-chain stores of a simulation).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:   s.Reads + o.Reads,
		Writes:  s.Writes + o.Writes,
		Deletes: s.Deletes + o.Deletes,
		Hits:    s.Hits + o.Hits,
		Misses:  s.Misses + o.Misses,
		Entries: s.Entries + o.Entries,
		Repairs: s.Repairs + o.Repairs,
	}
}

// HitRate returns Hits/(Hits+Misses), or 0 when no reads happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
