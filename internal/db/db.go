// Package db is forkwatch's storage backbone: a minimal key-value
// abstraction every persistent layer (trie nodes, contract code, block
// bodies, receipts, chain indices) stores through.
//
// The paper's methodology is "export every block and transaction into a
// database, then join and aggregate" (§3.1); measurement pipelines at that
// scale live or die by their ingest store. forkwatch's equivalent hot path
// — trie commits and ledger persistence over the ~3.3M-block nine-month
// runs — flows through the KV interface defined here, so backends can be
// swapped (sharded memory today; disk, compression or remote stores later)
// without touching the trie, state or chain layers.
//
// Two implementations ship in this package:
//
//   - MemDB: a sharded, mutex-striped in-memory store (the default).
//   - Cache: a write-through LRU wrapper that decorates any KV backend
//     and tracks hit/miss statistics.
//
// All implementations are safe for concurrent use unless documented
// otherwise (see NewEphemeral).
package db

// KV is the storage interface. Keys and values are arbitrary byte strings;
// implementations must not retain or mutate the caller's key slice after a
// call returns, and callers must not mutate a returned value (it may alias
// the store's copy).
type KV interface {
	// Get returns the value stored under key and whether it exists.
	Get(key []byte) ([]byte, bool)
	// Put stores value under key, replacing any previous value.
	Put(key, value []byte)
	// Has reports whether key exists without counting as a data read in
	// hit/miss statistics.
	Has(key []byte) bool
	// Delete removes key. Deleting an absent key is a no-op.
	Delete(key []byte)
	// NewBatch returns an empty write batch whose Write applies every
	// queued operation atomically with respect to concurrent readers of
	// a single key (per-shard locking; cross-shard readers may observe a
	// partially applied batch, which is fine for content-addressed data).
	NewBatch() Batch
	// Stats returns a snapshot of the store's counters.
	Stats() Stats
}

// Batch queues writes for a single atomic application. Batches are not
// safe for concurrent use; each goroutine builds its own.
type Batch interface {
	// Put queues a write. The value is retained until Write or Reset.
	Put(key, value []byte)
	// Delete queues a removal.
	Delete(key []byte)
	// Len returns the number of queued operations.
	Len() int
	// ValueSize returns the total queued value bytes (for flush
	// heuristics in future disk backends).
	ValueSize() int
	// Write applies every queued operation to the backing store and
	// resets the batch for reuse.
	Write()
	// Reset drops all queued operations.
	Reset()
}

// Stats is a snapshot of a store's activity counters. Reads and writes
// count Get/Put/Delete calls (batch operations count individually); Hits
// and Misses split reads by whether the key was found — for a caching
// wrapper, by whether the cache answered without hitting the backend.
type Stats struct {
	Reads   uint64
	Writes  uint64
	Deletes uint64
	Hits    uint64
	Misses  uint64
	// Entries is the number of keys currently stored (for a Cache, the
	// number of cached entries, not the backend's).
	Entries int
}

// Add returns the field-wise sum of two snapshots (for aggregating the
// per-chain stores of a simulation).
func (s Stats) Add(o Stats) Stats {
	return Stats{
		Reads:   s.Reads + o.Reads,
		Writes:  s.Writes + o.Writes,
		Deletes: s.Deletes + o.Deletes,
		Hits:    s.Hits + o.Hits,
		Misses:  s.Misses + o.Misses,
		Entries: s.Entries + o.Entries,
	}
}

// HitRate returns Hits/(Hits+Misses), or 0 when no reads happened.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}
