package db

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"time"
)

// Retry is a policy wrapper that absorbs transient storage faults: any
// operation that fails with an error marked Transient (see IsTransient)
// is retried up to a bounded number of attempts before the error is
// surfaced. Non-transient errors — crashes, corruption, read-only
// degradation — pass through immediately, so a torn store is recovered
// rather than hammered.
//
// Retrying at this layer keeps the trie/state/chain code honest: those
// layers treat every surviving error as a reason to abort the current
// commit, while the retry budget turns the storm of individually
// retriable hiccups a flaky device produces into either clean success or
// a single, meaningful failure.
//
// Operations are idempotent at this interface (Put/Delete/batch apply;
// for the log-structured disk backend a re-run append is superseded by
// newest-wins replay), so re-running a partially-observed attempt is
// always safe.
//
// Two budgets bound a retry storm. Attempts caps the count; the optional
// RetryPolicy adds sleeps between attempts (exponential backoff with
// deterministic jitter so two chains' retries don't synchronise) and a
// MaxElapsed wall-clock cap, and WithContext stops retrying the moment a
// request's context expires — a deadline-bounded RPC request can never be
// stalled past its budget by a flaky disk underneath it.
type Retry struct {
	inner KV
	p     RetryPolicy
	rng   *lockedRand
	ctx   context.Context // nil = retry without a context bound

	// test hooks
	now   func() time.Time
	sleep func(time.Duration)
}

// RetryPolicy parameterises a Retry. The zero value of everything but
// Attempts reproduces the historical behaviour: immediate re-attempts
// with no sleeping and no wall-clock cap.
type RetryPolicy struct {
	// Attempts bounds the total tries (minimum 1, i.e. no retry).
	Attempts int
	// BaseDelay is the sleep before the second attempt; each further
	// attempt doubles it. 0 disables sleeping entirely.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (0 = uncapped).
	MaxDelay time.Duration
	// MaxElapsed caps the wall-clock time spent inside one operation,
	// sleeps included: no attempt starts, and no sleep is entered, that
	// would cross the cap (0 = unlimited).
	MaxElapsed time.Duration
	// JitterSeed seeds the deterministic jitter stream. Jittered sleeps
	// are drawn uniformly from [delay/2, delay).
	JitterSeed int64
}

// DefaultRetryAttempts bounds how often a transient fault is retried. At
// a 20% injected fault rate, 10 attempts leave a per-op failure
// probability of ~1e-7 — small enough that chaos runs complete, large
// enough that genuinely dead stores fail fast.
const DefaultRetryAttempts = 10

// lockedRand is the jitter stream, shared across WithContext copies so
// the draw sequence stays deterministic for a given seed.
type lockedRand struct {
	mu  sync.Mutex
	rng *rand.Rand
}

func (l *lockedRand) int63n(n int64) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Int63n(n)
}

// NewRetry wraps inner, retrying transient errors up to attempts times
// (minimum 1, i.e. no retry) with no sleeping between attempts.
func NewRetry(inner KV, attempts int) *Retry {
	return NewRetryPolicy(inner, RetryPolicy{Attempts: attempts})
}

// NewRetryPolicy wraps inner under the given policy.
func NewRetryPolicy(inner KV, p RetryPolicy) *Retry {
	if p.Attempts < 1 {
		p.Attempts = 1
	}
	return &Retry{
		inner: inner,
		p:     p,
		rng:   &lockedRand{rng: rand.New(rand.NewSource(p.JitterSeed))},
		now:   time.Now,
		sleep: time.Sleep,
	}
}

// Inner returns the wrapped store.
func (r *Retry) Inner() KV { return r.inner }

// WithContext returns a view of the store whose retry loops additionally
// stop when ctx is done: an in-progress backoff sleep is interrupted and
// no further attempt starts. The returned view shares the inner store and
// the jitter stream with r; batches must be created from the view to
// inherit the bound.
func (r *Retry) WithContext(ctx context.Context) *Retry {
	cp := *r
	cp.ctx = ctx
	return &cp
}

// jittered draws the actual sleep for a nominal delay: uniform in
// [d/2, d), from the shared seeded stream.
func (r *Retry) jittered(d time.Duration) time.Duration {
	if d <= time.Nanosecond {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + r.rng.int63n(int64(d)-half))
}

// pause sleeps for d, or returns false early if the context fires first.
func (r *Retry) pause(d time.Duration) bool {
	if r.ctx == nil {
		r.sleep(d)
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.ctx.Done():
		return false
	}
}

func (r *Retry) do(op func() error) error {
	var start time.Time
	if r.p.MaxElapsed > 0 {
		start = r.now()
	}
	delay := r.p.BaseDelay
	var err error
	for attempt := 0; ; attempt++ {
		if r.ctx != nil {
			if cerr := r.ctx.Err(); cerr != nil {
				if err != nil {
					return errors.Join(err, cerr)
				}
				return cerr
			}
		}
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
		if attempt+1 >= r.p.Attempts {
			return err
		}
		var d time.Duration
		if delay > 0 {
			d = r.jittered(delay)
			delay *= 2
			if r.p.MaxDelay > 0 && delay > r.p.MaxDelay {
				delay = r.p.MaxDelay
			}
		}
		if r.p.MaxElapsed > 0 && r.now().Add(d).Sub(start) >= r.p.MaxElapsed {
			return err // the budget is spent: surface the last fault now
		}
		if d > 0 && !r.pause(d) {
			return errors.Join(err, r.ctx.Err())
		}
	}
}

// Get implements KV.
func (r *Retry) Get(key []byte) (v []byte, ok bool, err error) {
	err = r.do(func() error {
		var e error
		v, ok, e = r.inner.Get(key)
		return e
	})
	return v, ok, err
}

// Has implements KV.
func (r *Retry) Has(key []byte) (ok bool, err error) {
	err = r.do(func() error {
		var e error
		ok, e = r.inner.Has(key)
		return e
	})
	return ok, err
}

// Put implements KV.
func (r *Retry) Put(key, value []byte) error {
	return r.do(func() error { return r.inner.Put(key, value) })
}

// Delete implements KV.
func (r *Retry) Delete(key []byte) error {
	return r.do(func() error { return r.inner.Delete(key) })
}

// Stats implements KV.
func (r *Retry) Stats() Stats { return r.inner.Stats() }

// NewBatch implements KV: Write retries the whole (atomic) inner write.
func (r *Retry) NewBatch() Batch { return &retryBatch{r: r, inner: r.inner.NewBatch()} }

type retryBatch struct {
	r     *Retry
	inner Batch
}

func (b *retryBatch) Put(key, value []byte) { b.inner.Put(key, value) }
func (b *retryBatch) Delete(key []byte)     { b.inner.Delete(key) }
func (b *retryBatch) Len() int              { return b.inner.Len() }
func (b *retryBatch) ValueSize() int        { return b.inner.ValueSize() }
func (b *retryBatch) Reset()                { b.inner.Reset() }

func (b *retryBatch) Write() error {
	// A transient batch failure applied nothing (Batch.Write contract),
	// so re-running the same queued operations is safe. The inner batch
	// resets itself only on success, which is exactly what retrying
	// needs.
	return b.r.do(b.inner.Write)
}
