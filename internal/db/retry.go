package db

// Retry is a policy wrapper that absorbs transient storage faults: any
// operation that fails with an error marked Transient (see IsTransient)
// is retried up to a bounded number of attempts before the error is
// surfaced. Non-transient errors — crashes, corruption — pass through
// immediately, so a torn store is recovered rather than hammered.
//
// Retrying at this layer keeps the trie/state/chain code honest: those
// layers treat every surviving error as a reason to abort the current
// commit, while the retry budget turns the storm of individually
// retriable hiccups a flaky device produces into either clean success or
// a single, meaningful failure.
//
// Operations are idempotent at this interface (Put/Delete/batch apply),
// so re-running a partially-observed attempt is always safe.
type Retry struct {
	inner    KV
	attempts int
}

// DefaultRetryAttempts bounds how often a transient fault is retried. At
// a 20% injected fault rate, 10 attempts leave a per-op failure
// probability of ~1e-7 — small enough that chaos runs complete, large
// enough that genuinely dead stores fail fast.
const DefaultRetryAttempts = 10

// NewRetry wraps inner, retrying transient errors up to attempts times
// (minimum 1, i.e. no retry).
func NewRetry(inner KV, attempts int) *Retry {
	if attempts < 1 {
		attempts = 1
	}
	return &Retry{inner: inner, attempts: attempts}
}

// Inner returns the wrapped store.
func (r *Retry) Inner() KV { return r.inner }

func (r *Retry) do(op func() error) error {
	var err error
	for i := 0; i < r.attempts; i++ {
		if err = op(); err == nil || !IsTransient(err) {
			return err
		}
	}
	return err
}

// Get implements KV.
func (r *Retry) Get(key []byte) (v []byte, ok bool, err error) {
	err = r.do(func() error {
		var e error
		v, ok, e = r.inner.Get(key)
		return e
	})
	return v, ok, err
}

// Has implements KV.
func (r *Retry) Has(key []byte) (ok bool, err error) {
	err = r.do(func() error {
		var e error
		ok, e = r.inner.Has(key)
		return e
	})
	return ok, err
}

// Put implements KV.
func (r *Retry) Put(key, value []byte) error {
	return r.do(func() error { return r.inner.Put(key, value) })
}

// Delete implements KV.
func (r *Retry) Delete(key []byte) error {
	return r.do(func() error { return r.inner.Delete(key) })
}

// Stats implements KV.
func (r *Retry) Stats() Stats { return r.inner.Stats() }

// NewBatch implements KV: Write retries the whole (atomic) inner write.
func (r *Retry) NewBatch() Batch { return &retryBatch{r: r, inner: r.inner.NewBatch()} }

type retryBatch struct {
	r     *Retry
	inner Batch
}

func (b *retryBatch) Put(key, value []byte) { b.inner.Put(key, value) }
func (b *retryBatch) Delete(key []byte)     { b.inner.Delete(key) }
func (b *retryBatch) Len() int              { return b.inner.Len() }
func (b *retryBatch) ValueSize() int        { return b.inner.ValueSize() }
func (b *retryBatch) Reset()                { b.inner.Reset() }

func (b *retryBatch) Write() error {
	// A transient batch failure applied nothing (Batch.Write contract),
	// so re-running the same queued operations is safe. The inner batch
	// resets itself only on success, which is exactly what retrying
	// needs.
	return b.r.do(b.inner.Write)
}
