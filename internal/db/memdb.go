package db

import (
	"sort"
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count of NewMemDB. Trie nodes, code and
// block bodies are all keyed by (or prefixed with) uniformly distributed
// hashes, so a modest power of two spreads lock contention well.
const DefaultShards = 16

// MemDB is a sharded, mutex-striped in-memory key-value store: the default
// backend. Keys are striped over shards by a byte-mix of the key, so
// concurrent committers and readers (one chain writing state while p2p
// peers serve historical nodes) contend only per shard.
//
// MemDB itself never fails, but it honours an optional write guard (see
// SetWriteGuard) so fault-injection harnesses can make individual writes
// fail. Batch writes are all-or-nothing even then: every queued operation
// is checked against the guard while the involved shards are locked, and
// the store is mutated only after the whole batch has passed.
type MemDB struct {
	shards []memShard
	mask   uint32

	// guard, when set, can veto individual writes (fault-injection seam;
	// see SetWriteGuard). Accessed under guardMu.
	guardMu sync.RWMutex
	guard   WriteGuard

	reads   atomic.Uint64
	writes  atomic.Uint64
	deletes atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// WriteGuard inspects one pending write (del reports a deletion). A
// non-nil return vetoes the write: single Puts/Deletes fail without
// mutating the store, and a batch containing any vetoed operation fails
// without applying anything.
type WriteGuard func(key []byte, value []byte, del bool) error

type memShard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemDB returns an empty sharded in-memory store with DefaultShards
// shards.
func NewMemDB() *MemDB { return NewMemDBShards(DefaultShards) }

// NewMemDBShards returns an empty store striped over n shards (rounded up
// to a power of two, minimum 1).
func NewMemDBShards(n int) *MemDB {
	size := 1
	for size < n {
		size <<= 1
	}
	db := &MemDB{shards: make([]memShard, size), mask: uint32(size - 1)}
	for i := range db.shards {
		db.shards[i].m = make(map[string][]byte)
	}
	return db
}

// SetWriteGuard installs (or, with nil, removes) a write veto hook. This
// is the fault-injection seam tests and chaos harnesses use to make an
// in-memory store behave like a failing device; production callers never
// set it.
func (db *MemDB) SetWriteGuard(g WriteGuard) {
	db.guardMu.Lock()
	db.guard = g
	db.guardMu.Unlock()
}

func (db *MemDB) checkGuard(key string, value []byte, del bool) error {
	db.guardMu.RLock()
	g := db.guard
	db.guardMu.RUnlock()
	if g == nil {
		return nil
	}
	return g([]byte(key), value, del)
}

// shardIndex mixes the key into a shard index. Keys here are nearly always
// keccak digests (or short prefixed digests), so a cheap FNV-1a over the
// first bytes distributes uniformly.
func (db *MemDB) shardIndex(key []byte) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(key) && i < 8; i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return h & db.mask
}

func (db *MemDB) shardFor(key []byte) *memShard {
	return &db.shards[db.shardIndex(key)]
}

// Get implements KV.
func (db *MemDB) Get(key []byte) ([]byte, bool, error) {
	db.reads.Add(1)
	s := db.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[string(key)]
	s.mu.RUnlock()
	if ok {
		db.hits.Add(1)
	} else {
		db.misses.Add(1)
	}
	return v, ok, nil
}

// Has implements KV.
func (db *MemDB) Has(key []byte) (bool, error) {
	s := db.shardFor(key)
	s.mu.RLock()
	_, ok := s.m[string(key)]
	s.mu.RUnlock()
	return ok, nil
}

// Put implements KV.
func (db *MemDB) Put(key, value []byte) error {
	if err := db.checkGuard(string(key), value, false); err != nil {
		return err
	}
	db.writes.Add(1)
	s := db.shardFor(key)
	s.mu.Lock()
	s.m[string(key)] = value
	s.mu.Unlock()
	return nil
}

// Delete implements KV.
func (db *MemDB) Delete(key []byte) error {
	if err := db.checkGuard(string(key), nil, true); err != nil {
		return err
	}
	db.deletes.Add(1)
	s := db.shardFor(key)
	s.mu.Lock()
	delete(s.m, string(key))
	s.mu.Unlock()
	return nil
}

// NewBatch implements KV.
func (db *MemDB) NewBatch() Batch { return &memBatch{db: db} }

// Len returns the number of stored keys across all shards.
func (db *MemDB) Len() int {
	n := 0
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Keys snapshots every stored key, in no particular order. Intended for
// tests and debugging tools that need to enumerate a content-addressed
// store (the KV interface itself is deliberately iteration-free).
func (db *MemDB) Keys() [][]byte {
	var keys [][]byte
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for k := range s.m {
			keys = append(keys, []byte(k))
		}
		s.mu.RUnlock()
	}
	return keys
}

// Stats implements KV.
func (db *MemDB) Stats() Stats {
	return Stats{
		Reads:   db.reads.Load(),
		Writes:  db.writes.Load(),
		Deletes: db.deletes.Load(),
		Hits:    db.hits.Load(),
		Misses:  db.misses.Load(),
		Entries: db.Len(),
	}
}

// batchOp is one queued batch operation (delete when value is nil and del
// is set).
type batchOp struct {
	key   string
	value []byte
	del   bool
}

// memBatch queues writes against a MemDB. Write is all-or-nothing: it
// locks every involved shard (in index order, so concurrent batches never
// deadlock), validates the whole batch against the write guard, and only
// then mutates — a veto anywhere leaves the store byte-identical.
// Holding all involved shard locks for the apply also means concurrent
// readers never observe a partially applied batch, even across shards.
type memBatch struct {
	db   *MemDB
	ops  []batchOp
	size int
}

// Put implements Batch.
func (b *memBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), value: value})
	b.size += len(value)
}

// Delete implements Batch.
func (b *memBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), del: true})
}

// Len implements Batch.
func (b *memBatch) Len() int { return len(b.ops) }

// ValueSize implements Batch.
func (b *memBatch) ValueSize() int { return b.size }

// Write implements Batch: stage, validate, then swap.
func (b *memBatch) Write() error {
	db := b.db

	// Stage: which shards does this batch touch?
	touched := make(map[uint32]bool)
	for _, op := range b.ops {
		touched[db.shardIndex([]byte(op.key))] = true
	}
	indices := make([]uint32, 0, len(touched))
	for idx := range touched {
		indices = append(indices, idx)
	}
	sort.Slice(indices, func(i, j int) bool { return indices[i] < indices[j] })

	// Lock every involved shard in index order (total order prevents
	// deadlock against concurrent batches).
	for _, idx := range indices {
		db.shards[idx].mu.Lock()
	}
	unlock := func() {
		for _, idx := range indices {
			db.shards[idx].mu.Unlock()
		}
	}

	// Validate the whole batch before touching anything: a veto on the
	// last operation must leave the first unwritten.
	for _, op := range b.ops {
		if err := db.checkGuard(op.key, op.value, op.del); err != nil {
			unlock()
			return err
		}
	}

	// Swap: apply in queue order (a later Put of the same key wins).
	for _, op := range b.ops {
		s := db.shardFor([]byte(op.key))
		if op.del {
			db.deletes.Add(1)
			delete(s.m, op.key)
		} else {
			db.writes.Add(1)
			s.m[op.key] = op.value
		}
	}
	unlock()
	b.Reset()
	return nil
}

// Reset implements Batch.
func (b *memBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

// ephemeralKV is a plain single-map store without locking or statistics:
// the cheapest possible backend for throwaway single-goroutine tries
// (TxRoot/ReceiptRoot computations build and discard one per call).
type ephemeralKV map[string][]byte

// NewEphemeral returns an unsynchronized throwaway store. NOT safe for
// concurrent use; reach for NewMemDB anywhere the store outlives one call
// stack.
func NewEphemeral() KV { return make(ephemeralKV) }

func (e ephemeralKV) Get(key []byte) ([]byte, bool, error) {
	v, ok := e[string(key)]
	return v, ok, nil
}
func (e ephemeralKV) Has(key []byte) (bool, error) { _, ok := e[string(key)]; return ok, nil }
func (e ephemeralKV) Put(key, value []byte) error  { e[string(key)] = value; return nil }
func (e ephemeralKV) Delete(key []byte) error      { delete(e, string(key)); return nil }
func (e ephemeralKV) Stats() Stats                 { return Stats{Entries: len(e)} }
func (e ephemeralKV) NewBatch() Batch              { return &ephemeralBatch{kv: e} }

type ephemeralBatch struct {
	kv   ephemeralKV
	ops  []batchOp
	size int
}

func (b *ephemeralBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), value: value})
	b.size += len(value)
}

func (b *ephemeralBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), del: true})
}

func (b *ephemeralBatch) Len() int       { return len(b.ops) }
func (b *ephemeralBatch) ValueSize() int { return b.size }

func (b *ephemeralBatch) Write() error {
	for _, op := range b.ops {
		if op.del {
			delete(b.kv, op.key)
		} else {
			b.kv[op.key] = op.value
		}
	}
	b.Reset()
	return nil
}

func (b *ephemeralBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}
