package db

import (
	"sync"
	"sync/atomic"
)

// DefaultShards is the shard count of NewMemDB. Trie nodes, code and
// block bodies are all keyed by (or prefixed with) uniformly distributed
// hashes, so a modest power of two spreads lock contention well.
const DefaultShards = 16

// MemDB is a sharded, mutex-striped in-memory key-value store: the default
// backend. Keys are striped over shards by a byte-mix of the key, so
// concurrent committers and readers (one chain writing state while p2p
// peers serve historical nodes) contend only per shard.
type MemDB struct {
	shards []memShard
	mask   uint32

	reads   atomic.Uint64
	writes  atomic.Uint64
	deletes atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
}

type memShard struct {
	mu sync.RWMutex
	m  map[string][]byte
}

// NewMemDB returns an empty sharded in-memory store with DefaultShards
// shards.
func NewMemDB() *MemDB { return NewMemDBShards(DefaultShards) }

// NewMemDBShards returns an empty store striped over n shards (rounded up
// to a power of two, minimum 1).
func NewMemDBShards(n int) *MemDB {
	size := 1
	for size < n {
		size <<= 1
	}
	db := &MemDB{shards: make([]memShard, size), mask: uint32(size - 1)}
	for i := range db.shards {
		db.shards[i].m = make(map[string][]byte)
	}
	return db
}

// shardFor mixes the key into a shard index. Keys here are nearly always
// keccak digests (or short prefixed digests), so a cheap FNV-1a over the
// first bytes distributes uniformly.
func (db *MemDB) shardFor(key []byte) *memShard {
	h := uint32(2166136261)
	for i := 0; i < len(key) && i < 8; i++ {
		h = (h ^ uint32(key[i])) * 16777619
	}
	return &db.shards[h&db.mask]
}

// Get implements KV.
func (db *MemDB) Get(key []byte) ([]byte, bool) {
	db.reads.Add(1)
	s := db.shardFor(key)
	s.mu.RLock()
	v, ok := s.m[string(key)]
	s.mu.RUnlock()
	if ok {
		db.hits.Add(1)
	} else {
		db.misses.Add(1)
	}
	return v, ok
}

// Has implements KV.
func (db *MemDB) Has(key []byte) bool {
	s := db.shardFor(key)
	s.mu.RLock()
	_, ok := s.m[string(key)]
	s.mu.RUnlock()
	return ok
}

// Put implements KV.
func (db *MemDB) Put(key, value []byte) {
	db.writes.Add(1)
	s := db.shardFor(key)
	s.mu.Lock()
	s.m[string(key)] = value
	s.mu.Unlock()
}

// Delete implements KV.
func (db *MemDB) Delete(key []byte) {
	db.deletes.Add(1)
	s := db.shardFor(key)
	s.mu.Lock()
	delete(s.m, string(key))
	s.mu.Unlock()
}

// NewBatch implements KV.
func (db *MemDB) NewBatch() Batch { return &memBatch{db: db} }

// Len returns the number of stored keys across all shards.
func (db *MemDB) Len() int {
	n := 0
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// Keys snapshots every stored key, in no particular order. Intended for
// tests and debugging tools that need to enumerate a content-addressed
// store (the KV interface itself is deliberately iteration-free).
func (db *MemDB) Keys() [][]byte {
	var keys [][]byte
	for i := range db.shards {
		s := &db.shards[i]
		s.mu.RLock()
		for k := range s.m {
			keys = append(keys, []byte(k))
		}
		s.mu.RUnlock()
	}
	return keys
}

// Stats implements KV.
func (db *MemDB) Stats() Stats {
	return Stats{
		Reads:   db.reads.Load(),
		Writes:  db.writes.Load(),
		Deletes: db.deletes.Load(),
		Hits:    db.hits.Load(),
		Misses:  db.misses.Load(),
		Entries: db.Len(),
	}
}

// batchOp is one queued batch operation (delete when value is nil and del
// is set).
type batchOp struct {
	key   string
	value []byte
	del   bool
}

// memBatch queues writes against a MemDB, applying them shard-grouped
// under each shard's write lock.
type memBatch struct {
	db   *MemDB
	ops  []batchOp
	size int
}

// Put implements Batch.
func (b *memBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), value: value})
	b.size += len(value)
}

// Delete implements Batch.
func (b *memBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), del: true})
}

// Len implements Batch.
func (b *memBatch) Len() int { return len(b.ops) }

// ValueSize implements Batch.
func (b *memBatch) ValueSize() int { return b.size }

// Write implements Batch: applies operations grouped by shard so each
// shard's lock is taken once per batch.
func (b *memBatch) Write() {
	db := b.db
	// Group ops per shard index, preserving in-shard order (a later Put
	// of the same key must win).
	groups := make(map[*memShard][]batchOp)
	for _, op := range b.ops {
		s := db.shardFor([]byte(op.key))
		groups[s] = append(groups[s], op)
	}
	for s, ops := range groups {
		s.mu.Lock()
		for _, op := range ops {
			if op.del {
				db.deletes.Add(1)
				delete(s.m, op.key)
			} else {
				db.writes.Add(1)
				s.m[op.key] = op.value
			}
		}
		s.mu.Unlock()
	}
	b.Reset()
}

// Reset implements Batch.
func (b *memBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}

// ephemeralKV is a plain single-map store without locking or statistics:
// the cheapest possible backend for throwaway single-goroutine tries
// (TxRoot/ReceiptRoot computations build and discard one per call).
type ephemeralKV map[string][]byte

// NewEphemeral returns an unsynchronized throwaway store. NOT safe for
// concurrent use; reach for NewMemDB anywhere the store outlives one call
// stack.
func NewEphemeral() KV { return make(ephemeralKV) }

func (e ephemeralKV) Get(key []byte) ([]byte, bool) { v, ok := e[string(key)]; return v, ok }
func (e ephemeralKV) Has(key []byte) bool           { _, ok := e[string(key)]; return ok }
func (e ephemeralKV) Put(key, value []byte)         { e[string(key)] = value }
func (e ephemeralKV) Delete(key []byte)             { delete(e, string(key)) }
func (e ephemeralKV) Stats() Stats                  { return Stats{Entries: len(e)} }
func (e ephemeralKV) NewBatch() Batch               { return &ephemeralBatch{kv: e} }

type ephemeralBatch struct {
	kv   ephemeralKV
	ops  []batchOp
	size int
}

func (b *ephemeralBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), value: value})
	b.size += len(value)
}

func (b *ephemeralBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{key: string(key), del: true})
}

func (b *ephemeralBatch) Len() int       { return len(b.ops) }
func (b *ephemeralBatch) ValueSize() int { return b.size }

func (b *ephemeralBatch) Write() {
	for _, op := range b.ops {
		if op.del {
			delete(b.kv, op.key)
		} else {
			b.kv[op.key] = op.value
		}
	}
	b.Reset()
}

func (b *ephemeralBatch) Reset() {
	b.ops = b.ops[:0]
	b.size = 0
}
