package faultnet

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ParseSpec parses a comma-separated key=value fault specification, the
// format behind cmd/forknode's -faults flag:
//
//	seed=42,latency=20ms,jitter=200ms,drop=0.2,corrupt=0.01,reset=0.001,bw=1048576,stall=0
//
// Keys: seed (int), latency/jitter (durations), drop/corrupt/reset
// (probabilities in [0,1]), bw (bytes per second), stall (frames before a
// slow-loris stall, 0 = never). Unknown keys are rejected.
func ParseSpec(spec string) (Faults, error) {
	var f Faults
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return f, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		key, val, ok := strings.Cut(part, "=")
		if !ok {
			return f, fmt.Errorf("faultnet: bad spec element %q (want key=value)", part)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			f.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			f.Latency, err = time.ParseDuration(val)
		case "jitter":
			f.Jitter, err = time.ParseDuration(val)
		case "drop":
			f.DropRate, err = parseRate(val)
		case "corrupt":
			f.CorruptRate, err = parseRate(val)
		case "reset":
			f.ResetRate, err = parseRate(val)
		case "bw":
			f.BandwidthBps, err = strconv.Atoi(val)
		case "stall":
			f.StallWrites, err = strconv.Atoi(val)
		default:
			return f, fmt.Errorf("faultnet: unknown spec key %q", key)
		}
		if err != nil {
			return f, fmt.Errorf("faultnet: bad value for %s: %v", key, err)
		}
	}
	return f, nil
}

func parseRate(val string) (float64, error) {
	r, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if r < 0 || r > 1 {
		return 0, fmt.Errorf("rate %v outside [0,1]", r)
	}
	return r, nil
}

// Enabled reports whether the plan injects any fault at all.
func (f Faults) Enabled() bool {
	return f.Latency > 0 || f.Jitter > 0 || f.DropRate > 0 || f.CorruptRate > 0 ||
		f.ResetRate > 0 || f.BandwidthBps > 0 || f.StallWrites > 0
}

// String summarises the plan for logs.
func (f Faults) String() string {
	return fmt.Sprintf("seed=%d latency=%v jitter=%v drop=%.3f corrupt=%.3f reset=%.4f bw=%dB/s stall=%d",
		f.Seed, f.Latency, f.Jitter, f.DropRate, f.CorruptRate, f.ResetRate, f.BandwidthBps, f.StallWrites)
}
