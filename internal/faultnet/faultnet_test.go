package faultnet

import (
	"bytes"
	"errors"
	"net"
	"os"
	"sync"
	"testing"
	"time"

	"forkwatch/internal/p2p"
)

// accept runs an accept loop that drains every accepted conn into the
// returned buffer (net.Pipe writes only progress when read).
func accept(t *testing.T, ln net.Listener) *lockedBuffer {
	t.Helper()
	buf := &lockedBuffer{}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer conn.Close()
				chunk := make([]byte, 4096)
				for {
					n, err := conn.Read(chunk)
					if n > 0 {
						buf.Write(chunk[:n])
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()
	return buf
}

type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) Len() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Len()
}

// runSchedule dials through a fresh fault net with the given seed and
// pushes a fixed frame sequence, returning the recorded journal.
func runSchedule(t *testing.T, seed int64) []Event {
	t.Helper()
	mem := p2p.NewMemNet()
	ln, err := mem.Listen("sink")
	if err != nil {
		t.Fatal(err)
	}
	accept(t, ln)
	fnet := New(mem, Faults{
		Seed:        seed,
		Latency:     time.Millisecond,
		Jitter:      10 * time.Millisecond,
		DropRate:    0.2,
		CorruptRate: 0.05,
		Record:      true,
		Sleep:       func(time.Duration) {}, // schedule only, no wall time
	})
	conn, err := fnet.Endpoint("src").Dial("sink")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 0; i < 300; i++ {
		frame := make([]byte, 16+i%64)
		for j := range frame {
			frame[j] = byte(i + j)
		}
		if _, err := conn.Write(frame); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	return fnet.Journal()
}

// TestFaultScheduleDeterministic: the same seed over the same dial and
// write sequence yields the identical fault schedule — drop/corrupt
// decisions and delay values included — while a different seed does not.
func TestFaultScheduleDeterministic(t *testing.T) {
	a := runSchedule(t, 42)
	b := runSchedule(t, 42)
	if len(a) != 300 || len(b) != 300 {
		t.Fatalf("journal lengths: %d, %d (want 300)", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at frame %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	var drops int
	for _, ev := range a {
		if ev.Op == "drop" {
			drops++
		}
	}
	if drops < 30 || drops > 90 {
		t.Errorf("20%% drop rate produced %d/300 drops", drops)
	}
	c := runSchedule(t, 43)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault schedules")
	}
}

// TestPartitionAndHeal: a scripted bisection refuses new dials across
// the cut, resets live crossing connections, and heals on demand.
func TestPartitionAndHeal(t *testing.T) {
	mem := p2p.NewMemNet()
	lnB, err := mem.Listen("b")
	if err != nil {
		t.Fatal(err)
	}
	accept(t, lnB)
	fnet := New(mem, Faults{})
	epA := fnet.Endpoint("a")

	conn, err := epA.Dial("b")
	if err != nil {
		t.Fatalf("pre-partition dial: %v", err)
	}
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatalf("pre-partition write: %v", err)
	}

	fnet.PartitionSets([]string{"a"}, []string{"b"})
	if _, err := epA.Dial("b"); !errors.Is(err, ErrPartitioned) {
		t.Errorf("dial across partition: err = %v, want ErrPartitioned", err)
	}
	if !fnet.Partitioned("a", "b") {
		t.Error("Partitioned(a,b) = false during partition")
	}
	// The live crossing connection was reset.
	if _, err := conn.Write([]byte("x")); err == nil {
		t.Error("write on partitioned conn should fail")
	}

	fnet.Heal()
	conn2, err := epA.Dial("b")
	if err != nil {
		t.Fatalf("post-heal dial: %v", err)
	}
	conn2.Close()
	if fnet.Stats().Refusals != 1 {
		t.Errorf("refusals = %d, want 1", fnet.Stats().Refusals)
	}
}

// TestDeadlineForwarding: the wrapper honors SetDeadline semantics — a
// regression guard for the p2p read/write deadlines, which must work
// through faultnet over MemNet (net.Pipe) exactly as over TCP.
func TestDeadlineForwarding(t *testing.T) {
	mem := p2p.NewMemNet()
	ln, err := mem.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	// Accept but never read or write: both directions stall naturally.
	go func() {
		for {
			if _, err := ln.Accept(); err != nil {
				return
			}
		}
	}()
	fnet := New(mem, Faults{})
	conn, err := fnet.Endpoint("cli").Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	conn.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := conn.Read(make([]byte, 1)); !isTimeout(err) {
		t.Errorf("read past deadline: err = %v, want timeout", err)
	}
	conn.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := conn.Write(make([]byte, 1)); !isTimeout(err) {
		t.Errorf("write past deadline: err = %v, want timeout", err)
	}
}

// TestStallRespectsWriteDeadline: a slow-loris conn blocks writes but
// still honors the write deadline, so hardened peers can escape it.
func TestStallRespectsWriteDeadline(t *testing.T) {
	mem := p2p.NewMemNet()
	ln, err := mem.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	accept(t, ln)
	fnet := New(mem, Faults{StallWrites: 1})
	conn, err := fnet.Endpoint("cli").Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("first frame passes")); err != nil {
		t.Fatalf("pre-stall write: %v", err)
	}
	conn.SetWriteDeadline(time.Now().Add(40 * time.Millisecond))
	start := time.Now()
	_, err = conn.Write([]byte("stalled"))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("stalled write: err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 30*time.Millisecond {
		t.Errorf("stall returned after %v, before the deadline", elapsed)
	}
	if fnet.Stats().Stalls != 1 {
		t.Errorf("stalls = %d, want 1", fnet.Stats().Stalls)
	}
}

// TestDropAndReset: a full-drop plan delivers nothing while reporting
// success; a full-reset plan kills the connection on first write.
func TestDropAndReset(t *testing.T) {
	mem := p2p.NewMemNet()
	ln, err := mem.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	sink := accept(t, ln)

	drops := New(mem, Faults{DropRate: 1})
	conn, err := drops.Endpoint("cli").Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if n, err := conn.Write([]byte("lost")); err != nil || n != 4 {
			t.Fatalf("dropped write reported (%d, %v)", n, err)
		}
	}
	time.Sleep(20 * time.Millisecond)
	if sink.Len() != 0 {
		t.Errorf("%d bytes leaked through a 100%% drop plan", sink.Len())
	}
	conn.Close()

	resets := New(mem, Faults{ResetRate: 1})
	conn2, err := resets.Endpoint("cli").Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn2.Write([]byte("boom")); !errors.Is(err, ErrInjectedReset) {
		t.Errorf("reset write: err = %v, want ErrInjectedReset", err)
	}
	if _, err := conn2.Write([]byte("after")); err == nil {
		t.Error("write after injected reset should fail")
	}
}

// TestBandwidthCap: serialization delay scales with frame size through
// the injected sleeper.
func TestBandwidthCap(t *testing.T) {
	mem := p2p.NewMemNet()
	ln, err := mem.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	accept(t, ln)
	var slept time.Duration
	fnet := New(mem, Faults{
		BandwidthBps: 1000,
		Sleep:        func(d time.Duration) { slept += d },
	})
	conn, err := fnet.Endpoint("cli").Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(make([]byte, 500)); err != nil {
		t.Fatal(err)
	}
	if slept != 500*time.Millisecond {
		t.Errorf("500B at 1000B/s slept %v, want 500ms", slept)
	}
}

// TestCorruption: with corruption certain, delivered bytes differ from
// the sent frame in exactly one bit.
func TestCorruption(t *testing.T) {
	mem := p2p.NewMemNet()
	ln, err := mem.Listen("srv")
	if err != nil {
		t.Fatal(err)
	}
	conns := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			conns <- c
		}
	}()
	fnet := New(mem, Faults{Seed: 7, CorruptRate: 1})
	conn, err := fnet.Endpoint("cli").Dial("srv")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	sent := []byte("the quick brown fox")
	go conn.Write(sent)
	server := <-conns
	got := make([]byte, len(sent))
	if _, err := server.Read(got); err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := range sent {
		if sent[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Errorf("corruption touched %d bytes, want exactly 1 (got %q)", diff, got)
	}
}

func TestParseSpec(t *testing.T) {
	f, err := ParseSpec("seed=42, latency=20ms, jitter=200ms, drop=0.2, corrupt=0.01, reset=0.001, bw=1048576, stall=9")
	if err != nil {
		t.Fatal(err)
	}
	if f.Seed != 42 || f.Latency != 20*time.Millisecond || f.Jitter != 200*time.Millisecond ||
		f.DropRate != 0.2 || f.CorruptRate != 0.01 || f.ResetRate != 0.001 ||
		f.BandwidthBps != 1<<20 || f.StallWrites != 9 {
		t.Errorf("ParseSpec = %+v", f)
	}
	if !f.Enabled() {
		t.Error("parsed plan should report Enabled")
	}
	if empty, err := ParseSpec(""); err != nil || empty.Enabled() {
		t.Errorf("empty spec: %+v, %v", empty, err)
	}
	for _, bad := range []string{"drop=1.5", "nope=1", "latency", "seed=abc"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q) accepted", bad)
		}
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
