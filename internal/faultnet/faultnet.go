// Package faultnet is a deterministic fault-injecting transport wrapper.
// It composes over any Dialer/Listener pair — real TCP or the in-memory
// MemNet — and injects the failure modes that shaped the paper's
// partition dynamics: latency and jitter, probabilistic frame loss,
// byte-level corruption, bandwidth caps, mid-stream connection resets,
// slow-loris stalls, and scripted bisection partitions.
//
// Every random decision is drawn from a *rand.Rand derived from a master
// seed plus the connection's endpoint labels and per-pair dial sequence,
// so the same seed over the same dial sequence produces the same fault
// schedule. Delays go through an injectable Sleep function, keeping the
// package virtual-clock friendly: tests can scale or zero the sleeps
// without changing which frames are dropped or corrupted.
//
// A "frame" here is one Write call. The p2p layer writes each framed wire
// message with a single Write, so frame-level loss and corruption at this
// layer line up exactly with protocol messages.
package faultnet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// Dialer is the minimal dialing interface faultnet wraps. It is
// structurally identical to p2p.Dialer, so either package's transports
// satisfy both.
type Dialer interface {
	Dial(addr string) (net.Conn, error)
}

// Fault-injection errors.
var (
	// ErrPartitioned reports a dial across an active scripted partition.
	ErrPartitioned = errors.New("faultnet: destination unreachable (partitioned)")
	// ErrInjectedReset reports a connection killed by the reset fault.
	ErrInjectedReset = errors.New("faultnet: connection reset (injected)")
	// ErrConnClosed reports I/O on a closed fault conn.
	ErrConnClosed = errors.New("faultnet: connection closed")
)

// Faults configures the injected failure modes. The zero value injects
// nothing and is a transparent pass-through.
type Faults struct {
	// Seed is the master seed for every probabilistic decision.
	Seed int64
	// Latency is a fixed one-way delay applied to every frame.
	Latency time.Duration
	// Jitter adds a uniform random [0, Jitter) delay per frame.
	Jitter time.Duration
	// DropRate is the probability a frame is silently discarded.
	DropRate float64
	// CorruptRate is the probability one random byte of a frame is
	// bit-flipped before transmission.
	CorruptRate float64
	// ResetRate is the probability a frame triggers a full connection
	// reset instead of being sent.
	ResetRate float64
	// BandwidthBps caps each connection direction to this many bytes per
	// second (0 = unlimited), modelled as a serialization delay.
	BandwidthBps int
	// StallWrites, when > 0, turns the connection into a slow loris after
	// that many frames: writes stop making progress and block until the
	// write deadline (or forever without one).
	StallWrites int
	// Sleep implements delays; nil means time.Sleep. Tests inject a
	// scaled or no-op sleeper — the fault schedule (which frames are
	// delayed, dropped or corrupted, and by how much) is unaffected.
	Sleep func(time.Duration)
	// Record, when true, appends every fault decision to the Net's
	// journal for determinism checks.
	Record bool
}

// Event is one journaled fault decision.
type Event struct {
	// Conn labels the connection ("self->remote#n" or "addr<-accept#n").
	Conn string
	// Seq is the frame index within the connection.
	Seq int
	// Op is the decision: "pass", "drop", "corrupt", "reset" or "stall".
	Op string
	// Delay is the injected latency (latency + jitter + serialization).
	Delay time.Duration
	// Size is the frame length in bytes.
	Size int
}

// Stats counts injected faults across a Net.
type Stats struct {
	Frames      int64
	Dropped     int64
	Corrupted   int64
	Resets      int64
	Stalls      int64
	Refusals    int64 // dials refused by an active partition
	TotalDelay  time.Duration
	Connections int64
}

// Net wraps an underlying transport with fault injection and partition
// scripting. Create per-node endpoints with Endpoint.
type Net struct {
	inner  Dialer
	faults Faults

	mu      sync.Mutex
	sides   map[string]int // addr -> partition side; empty map = healed
	conns   map[*Conn]struct{}
	dialSeq map[string]int
	journal []Event
	stats   Stats
}

// New wraps dialer with the given fault plan.
func New(dialer Dialer, faults Faults) *Net {
	if faults.Sleep == nil {
		faults.Sleep = time.Sleep
	}
	return &Net{
		inner:   dialer,
		faults:  faults,
		sides:   make(map[string]int),
		conns:   make(map[*Conn]struct{}),
		dialSeq: make(map[string]int),
	}
}

// Stats returns a snapshot of the fault counters.
func (n *Net) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Journal returns a copy of the recorded fault decisions (Faults.Record
// must be set).
func (n *Net) Journal() []Event {
	n.mu.Lock()
	defer n.mu.Unlock()
	return append([]Event(nil), n.journal...)
}

// Partition installs a scripted partition: each address maps to a side,
// dials between different sides are refused, and live connections that
// cross sides are reset. Addresses absent from the map are unaffected.
func (n *Net) Partition(sides map[string]int) {
	n.mu.Lock()
	n.sides = make(map[string]int, len(sides))
	for addr, side := range sides {
		n.sides[addr] = side
	}
	var kill []*Conn
	for c := range n.conns {
		if n.crossesLocked(c.local, c.remote) {
			kill = append(kill, c)
		}
	}
	n.mu.Unlock()
	// Closing the dial-side conn propagates to the accepted side, so the
	// bisection severs both directions.
	for _, c := range kill {
		c.Close()
	}
}

// PartitionSets is a convenience for a bisection: addresses in a are on
// one side, addresses in b on the other.
func (n *Net) PartitionSets(a, b []string) {
	sides := make(map[string]int, len(a)+len(b))
	for _, addr := range a {
		sides[addr] = 0
	}
	for _, addr := range b {
		sides[addr] = 1
	}
	n.Partition(sides)
}

// Heal removes the partition; subsequent dials succeed again.
func (n *Net) Heal() {
	n.mu.Lock()
	n.sides = make(map[string]int)
	n.mu.Unlock()
}

// Partitioned reports whether addresses a and b are currently on
// different sides of a scripted partition.
func (n *Net) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.crossesLocked(a, b)
}

func (n *Net) crossesLocked(a, b string) bool {
	if a == "" || b == "" {
		return false
	}
	sa, oka := n.sides[a]
	sb, okb := n.sides[b]
	return oka && okb && sa != sb
}

// Endpoint binds a node address to the net, so outbound connections know
// both their local and remote labels (partition enforcement and seed
// derivation need the pair).
func (n *Net) Endpoint(self string) *Endpoint {
	return &Endpoint{net: n, self: self}
}

// Endpoint is one node's view of the faulty network. It satisfies the
// p2p Dialer interface and wraps that node's listener.
type Endpoint struct {
	net  *Net
	self string
}

// Dial connects through the underlying transport, refusing dials across
// an active partition, and returns a fault-injecting conn.
func (e *Endpoint) Dial(addr string) (net.Conn, error) {
	n := e.net
	n.mu.Lock()
	if n.crossesLocked(e.self, addr) {
		n.stats.Refusals++
		n.mu.Unlock()
		return nil, fmt.Errorf("%w: %s -> %s", ErrPartitioned, e.self, addr)
	}
	pair := e.self + "->" + addr
	seq := n.dialSeq[pair]
	n.dialSeq[pair] = seq + 1
	n.mu.Unlock()

	inner, err := n.inner.Dial(addr)
	if err != nil {
		return nil, err
	}
	return n.wrap(inner, e.self, addr, fmt.Sprintf("%s#%d", pair, seq)), nil
}

// WrapListener wraps ln so accepted connections inject faults on their
// outbound (server -> client) direction. Accepted conns carry no remote
// label; partitions sever them through their dial-side pipe half.
func (e *Endpoint) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, ep: e}
}

type faultListener struct {
	net.Listener
	ep *Endpoint
	mu sync.Mutex
	n  int
}

// Accept implements net.Listener.
func (l *faultListener) Accept() (net.Conn, error) {
	inner, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	seq := l.n
	l.n++
	l.mu.Unlock()
	label := fmt.Sprintf("%s<-accept#%d", l.ep.self, seq)
	return l.ep.net.wrap(inner, l.ep.self, "", label), nil
}

// connSeed derives a per-connection RNG seed from the master seed and the
// connection label, so fault schedules are stable per connection identity
// regardless of goroutine interleaving across connections.
func (n *Net) connSeed(label string) int64 {
	h := fnv.New64a()
	var b [8]byte
	for i := range b {
		b[i] = byte(n.faults.Seed >> (8 * i))
	}
	h.Write(b[:])
	h.Write([]byte(label))
	return int64(h.Sum64())
}

func (n *Net) wrap(inner net.Conn, local, remote, label string) *Conn {
	c := &Conn{
		Conn:   inner,
		net:    n,
		local:  local,
		remote: remote,
		label:  label,
		rng:    rand.New(rand.NewSource(n.connSeed(label))),
		closed: make(chan struct{}),
	}
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.stats.Connections++
	n.mu.Unlock()
	return c
}

// Conn is a fault-injecting net.Conn. Reads pass through; writes are
// where frames are delayed, dropped, corrupted, reset or stalled.
type Conn struct {
	net.Conn
	net    *Net
	local  string
	remote string
	label  string

	mu     sync.Mutex // serializes writers and guards rng/seq
	rng    *rand.Rand
	seq    int
	closed chan struct{}
	once   sync.Once

	deadlineMu    sync.Mutex
	writeDeadline time.Time
}

// Close implements net.Conn. Idempotent.
func (c *Conn) Close() error {
	var err error
	c.once.Do(func() {
		close(c.closed)
		err = c.Conn.Close()
		c.net.mu.Lock()
		delete(c.net.conns, c)
		c.net.mu.Unlock()
	})
	return err
}

// SetDeadline implements net.Conn, tracking the write half for the stall
// emulation and forwarding to the wrapped conn.
func (c *Conn) SetDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.writeDeadline = t
	c.deadlineMu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error {
	c.deadlineMu.Lock()
	c.writeDeadline = t
	c.deadlineMu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// SetReadDeadline implements net.Conn (pass-through; declared so the
// deadline contract of the wrapper is explicit).
func (c *Conn) SetReadDeadline(t time.Time) error {
	return c.Conn.SetReadDeadline(t)
}

// Write injects the configured faults, then forwards to the wrapped conn.
// Dropped frames report success, exactly like a lossy network below TCP
// framing would look to the application.
func (c *Conn) Write(p []byte) (int, error) {
	select {
	case <-c.closed:
		return 0, ErrConnClosed
	default:
	}
	f := &c.net.faults

	c.mu.Lock()
	seq := c.seq
	c.seq++
	// Draw all randomness in a fixed order under the lock so the
	// schedule depends only on the seed, not on sleep timing.
	var delay time.Duration
	if f.Latency > 0 {
		delay += f.Latency
	}
	if f.Jitter > 0 {
		delay += time.Duration(c.rng.Int63n(int64(f.Jitter)))
	}
	if f.BandwidthBps > 0 {
		delay += time.Duration(len(p)) * time.Second / time.Duration(f.BandwidthBps)
	}
	stall := f.StallWrites > 0 && seq >= f.StallWrites
	reset := !stall && f.ResetRate > 0 && c.rng.Float64() < f.ResetRate
	drop := !stall && !reset && f.DropRate > 0 && c.rng.Float64() < f.DropRate
	corrupt := -1
	if !stall && !reset && !drop && f.CorruptRate > 0 && c.rng.Float64() < f.CorruptRate && len(p) > 0 {
		corrupt = c.rng.Intn(len(p))
	}

	op := "pass"
	switch {
	case stall:
		op = "stall"
	case reset:
		op = "reset"
	case drop:
		op = "drop"
	case corrupt >= 0:
		op = "corrupt"
	}
	c.net.note(Event{Conn: c.label, Seq: seq, Op: op, Delay: delay, Size: len(p)}, op, delay)

	if stall {
		c.mu.Unlock()
		return c.stallWrite()
	}
	if reset {
		c.mu.Unlock()
		c.Close()
		return 0, ErrInjectedReset
	}
	if delay > 0 {
		f.Sleep(delay)
	}
	if drop {
		c.mu.Unlock()
		return len(p), nil
	}
	var buf []byte
	if corrupt >= 0 {
		buf = append([]byte(nil), p...)
		buf[corrupt] ^= 1 << uint(c.rng.Intn(8))
	}
	c.mu.Unlock()

	if buf != nil {
		if _, err := c.Conn.Write(buf); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return c.Conn.Write(p)
}

// stallWrite emulates a slow-loris connection: the write never makes
// progress. With a write deadline set it returns os.ErrDeadlineExceeded
// once the deadline passes (the same contract net.Pipe and TCP honor);
// without one it blocks until the conn is closed.
func (c *Conn) stallWrite() (int, error) {
	c.deadlineMu.Lock()
	deadline := c.writeDeadline
	c.deadlineMu.Unlock()
	if deadline.IsZero() {
		<-c.closed
		return 0, ErrConnClosed
	}
	timer := time.NewTimer(time.Until(deadline))
	defer timer.Stop()
	select {
	case <-timer.C:
		return 0, os.ErrDeadlineExceeded
	case <-c.closed:
		return 0, ErrConnClosed
	}
}

func (n *Net) note(ev Event, op string, delay time.Duration) {
	n.mu.Lock()
	n.stats.Frames++
	n.stats.TotalDelay += delay
	switch op {
	case "drop":
		n.stats.Dropped++
	case "corrupt":
		n.stats.Corrupted++
	case "reset":
		n.stats.Resets++
	case "stall":
		n.stats.Stalls++
	}
	if n.faults.Record {
		n.journal = append(n.journal, ev)
	}
	n.mu.Unlock()
}
