package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"forkwatch/internal/chain"
	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
)

// smallScenario is a fast full-fidelity scenario: one short simulated
// day, tiny population, enough blocks and transactions for every RPC
// method to have something to return.
func smallScenario(dataDir string) *sim.Scenario {
	sc := sim.NewScenario(7, 1)
	sc.Mode = sim.ModeFull
	sc.DayLength = 3600
	sc.Users = 40
	sc.ETHTxPerDay = 30
	sc.ETCTxPerDay = 12
	sc.Storage.Backend = "disk"
	sc.Storage.DataDir = dataDir
	return sc
}

// post sends one JSON-RPC request body to a route of the archive and
// returns the raw response bytes.
func post(t *testing.T, handler http.Handler, route, body string) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, route, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s %s: HTTP %d: %s", route, body, rec.Code, rec.Body.Bytes())
	}
	out, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOpenServesByteIdenticalResponses is the restart acceptance test:
// build the archive once on the disk backend, interrogate every RPC
// method, shut the process model down, reopen the SAME data directory
// via Open — which must not re-simulate — and require byte-identical
// responses to the identical requests.
func TestOpenServesByteIdenticalResponses(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity build")
	}
	dataDir := t.TempDir()
	built, err := Build(smallScenario(dataDir), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	// Assemble the request set from the built chains: every method, on
	// both routes, with concrete params harvested from the ETH/ETC heads.
	reqID := 0
	var requests []struct{ route, body string }
	add := func(route, method, params string) {
		reqID++
		requests = append(requests, struct{ route, body string }{
			route: route,
			body: fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"%s","params":[%s]}`,
				reqID, method, params),
		})
	}
	for route, bc := range map[string]*chain.Blockchain{"/eth": built.ETH.BC, "/etc": built.ETC.BC} {
		head := bc.Head()
		add(route, "eth_blockNumber", "")
		add(route, "eth_getBlockByNumber", `"0x1", true`)
		add(route, "eth_getBlockByNumber", fmt.Sprintf(`"0x%x", false`, head.Number()))
		add(route, "eth_getBlockByHash", fmt.Sprintf(`"%s", true`, head.Hash()))
		var tx *chain.Transaction
		for n := head.Number(); n > 0 && tx == nil; n-- {
			if blk, ok := bc.BlockByNumber(n); ok && len(blk.Txs) > 0 {
				tx = blk.Txs[0]
			}
		}
		if tx == nil {
			t.Fatalf("%s: the simulated day mined no transactions", route)
		}
		add(route, "eth_getTransactionByHash", fmt.Sprintf(`"%s"`, tx.Hash()))
		add(route, "eth_getTransactionReceipt", fmt.Sprintf(`"%s"`, tx.Hash()))
		add(route, "eth_getBalance", fmt.Sprintf(`"%s", "latest"`, tx.From))
		add(route, "eth_getTransactionCount", fmt.Sprintf(`"%s", "latest"`, tx.From))
		add(route, "fork_difficultyWindow", fmt.Sprintf(`"0x1", "0x%x"`, head.Number()))
		add(route, "fork_echoCandidates", `"0x1", "0x20"`)
		add(route, "fork_poolShares", fmt.Sprintf(`"0x1", "0x%x"`, head.Number()))
	}

	before := make([][]byte, len(requests))
	for i, r := range requests {
		before[i] = post(t, built.Server, r.route, r.body)
	}
	built.Server.Close()

	// Restart: reopen the same directory. No engine may run.
	reopened, err := Open(smallScenario(dataDir), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("Open after restart: %v", err)
	}
	defer reopened.Server.Close()
	if reopened.Engine != nil {
		t.Fatal("Open ran a simulation engine; restarts must serve from disk alone")
	}
	if reopened.ETH.BC.Head().Hash() != built.ETH.BC.Head().Hash() {
		t.Fatal("reopened ETH head diverged from the built chain")
	}
	if reopened.ETC.BC.Head().Hash() != built.ETC.BC.Head().Hash() {
		t.Fatal("reopened ETC head diverged from the built chain")
	}
	for i, r := range requests {
		after := post(t, reopened.Server, r.route, r.body)
		if !bytes.Equal(before[i], after) {
			t.Errorf("%s %s:\n before %s\n after  %s", r.route, r.body, before[i], after)
		}
	}

	// OpenOrBuild over the same directory must take the reopen path too.
	again, err := OpenOrBuild(smallScenario(dataDir), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("OpenOrBuild over existing archive: %v", err)
	}
	defer again.Server.Close()
	if again.Engine != nil {
		t.Fatal("OpenOrBuild re-simulated although the directory holds an archive")
	}
}

// TestOpenOrBuildFreshDirectoryBuilds: an empty data directory has no
// chain, so OpenOrBuild must fall back to running the simulation.
func TestOpenOrBuildFreshDirectoryBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity build")
	}
	res, err := OpenOrBuild(smallScenario(t.TempDir()), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("OpenOrBuild over fresh dir: %v", err)
	}
	defer res.Server.Close()
	if res.Engine == nil {
		t.Fatal("fresh directory did not build")
	}
	if res.ETH.BC.Head().Number() == 0 {
		t.Fatal("built archive has no blocks")
	}
}
