package serve

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"forkwatch/internal/chain"
	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
)

// smallScenario is a fast full-fidelity scenario: one short simulated
// day, tiny population, enough blocks and transactions for every RPC
// method to have something to return.
func smallScenario(dataDir string) *sim.Scenario {
	sc := sim.NewScenario(7, 1)
	sc.Mode = sim.ModeFull
	sc.DayLength = 3600
	sc.Users = 40
	sc.ETHTxPerDay = 30
	sc.ETCTxPerDay = 12
	sc.Storage.Backend = "disk"
	sc.Storage.DataDir = dataDir
	return sc
}

// post sends one JSON-RPC request body to a route of the archive and
// returns the raw response bytes.
func post(t *testing.T, handler http.Handler, route, body string) []byte {
	t.Helper()
	req := httptest.NewRequest(http.MethodPost, route, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("%s %s: HTTP %d: %s", route, body, rec.Code, rec.Body.Bytes())
	}
	out, err := io.ReadAll(rec.Result().Body)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestOpenServesByteIdenticalResponses is the restart acceptance test:
// build the archive once on the disk backend, interrogate every RPC
// method, shut the process model down, reopen the SAME data directory
// via Open — which must not re-simulate — and require byte-identical
// responses to the identical requests.
func TestOpenServesByteIdenticalResponses(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity build")
	}
	dataDir := t.TempDir()
	built, err := Build(smallScenario(dataDir), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}

	// Assemble the request set from the built chains: every method, on
	// both routes, with concrete params harvested from the ETH/ETC heads.
	reqID := 0
	var requests []struct{ route, body string }
	add := func(route, method, params string) {
		reqID++
		requests = append(requests, struct{ route, body string }{
			route: route,
			body: fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"%s","params":[%s]}`,
				reqID, method, params),
		})
	}
	for route, bc := range map[string]*chain.Blockchain{"/eth": built.Ledger("ETH").BC, "/etc": built.Ledger("ETC").BC} {
		head := bc.Head()
		add(route, "eth_blockNumber", "")
		add(route, "eth_getBlockByNumber", `"0x1", true`)
		add(route, "eth_getBlockByNumber", fmt.Sprintf(`"0x%x", false`, head.Number()))
		add(route, "eth_getBlockByHash", fmt.Sprintf(`"%s", true`, head.Hash()))
		var tx *chain.Transaction
		for n := head.Number(); n > 0 && tx == nil; n-- {
			if blk, ok := bc.BlockByNumber(n); ok && len(blk.Txs) > 0 {
				tx = blk.Txs[0]
			}
		}
		if tx == nil {
			t.Fatalf("%s: the simulated day mined no transactions", route)
		}
		add(route, "eth_getTransactionByHash", fmt.Sprintf(`"%s"`, tx.Hash()))
		add(route, "eth_getTransactionReceipt", fmt.Sprintf(`"%s"`, tx.Hash()))
		add(route, "eth_getBalance", fmt.Sprintf(`"%s", "latest"`, tx.From))
		add(route, "eth_getTransactionCount", fmt.Sprintf(`"%s", "latest"`, tx.From))
		add(route, "fork_difficultyWindow", fmt.Sprintf(`"0x1", "0x%x"`, head.Number()))
		add(route, "fork_echoCandidates", `"0x1", "0x20"`)
		add(route, "fork_poolShares", fmt.Sprintf(`"0x1", "0x%x"`, head.Number()))
	}

	before := make([][]byte, len(requests))
	for i, r := range requests {
		before[i] = post(t, built.Server, r.route, r.body)
	}
	built.Server.Close()

	// Restart: reopen the same directory. No engine may run.
	reopened, err := Open(smallScenario(dataDir), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("Open after restart: %v", err)
	}
	defer reopened.Server.Close()
	if reopened.Engine != nil {
		t.Fatal("Open ran a simulation engine; restarts must serve from disk alone")
	}
	if reopened.Ledger("ETH").BC.Head().Hash() != built.Ledger("ETH").BC.Head().Hash() {
		t.Fatal("reopened ETH head diverged from the built chain")
	}
	if reopened.Ledger("ETC").BC.Head().Hash() != built.Ledger("ETC").BC.Head().Hash() {
		t.Fatal("reopened ETC head diverged from the built chain")
	}
	for i, r := range requests {
		after := post(t, reopened.Server, r.route, r.body)
		if !bytes.Equal(before[i], after) {
			t.Errorf("%s %s:\n before %s\n after  %s", r.route, r.body, before[i], after)
		}
	}

	// OpenOrBuild over the same directory must take the reopen path too.
	again, err := OpenOrBuild(smallScenario(dataDir), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("OpenOrBuild over existing archive: %v", err)
	}
	defer again.Server.Close()
	if again.Engine != nil {
		t.Fatal("OpenOrBuild re-simulated although the directory holds an archive")
	}
}

// TestOpenOrBuildFreshDirectoryBuilds: an empty data directory has no
// chain, so OpenOrBuild must fall back to running the simulation.
func TestOpenOrBuildFreshDirectoryBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity build")
	}
	res, err := OpenOrBuild(smallScenario(t.TempDir()), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("OpenOrBuild over fresh dir: %v", err)
	}
	defer res.Server.Close()
	if res.Engine == nil {
		t.Fatal("fresh directory did not build")
	}
	if res.Ledger("ETH").BC.Head().Number() == 0 {
		t.Fatal("built archive has no blocks")
	}
}

// threeWayScenario is a tiny full-fidelity three-partition scenario for
// the N-way serving tests.
func threeWayScenario(dataDir string) *sim.Scenario {
	sc := sim.NewScenario(7, 1)
	sc.Mode = sim.ModeFull
	sc.DayLength = 3600
	sc.Users = 30
	sc.Storage.Backend = "disk"
	sc.Storage.DataDir = dataDir
	sc.Partitions = []sim.PartitionSpec{
		{Name: "ONE", ChainID: 1, DAOSupport: true, Price0: 10, RallyShare: 1,
			PrimaryFraction: 0.5, TxPerDay: 30, EIP155Day: -1, Pools: 20, PoolAlpha: 1, PoolCap: 0.24},
		{Name: "TWO", ChainID: 2, ShareAtFork: 0.2, Price0: 5, RallyShare: 1,
			PrimaryFraction: 0.3, TxPerDay: 12, EIP155Day: -1, Pools: 15, PoolAlpha: 1.2, PoolCap: 0.24},
		{Name: "TRI", ChainID: 3, ShareAtFork: 0.1, Price0: 2, RallyShare: 1,
			PrimaryFraction: 0.1, TxPerDay: 8, EIP155Day: -1, Pools: 10, PoolAlpha: 1.3, PoolCap: 0.3},
	}
	return sc
}

// TestThreeWayRoutesAndRestart builds a three-partition archive, checks
// every chain is routed at its lowercase name with cross-linked peers,
// then reopens it from disk and requires identical heads.
func TestThreeWayRoutesAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity build")
	}
	dataDir := t.TempDir()
	built, err := Build(threeWayScenario(dataDir), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(built.Chains) != 3 {
		t.Fatalf("served %d chains, want 3", len(built.Chains))
	}
	for _, c := range built.Chains {
		route := "/" + strings.ToLower(c.Name)
		raw := post(t, built.Server, route, `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`)
		if !bytes.Contains(raw, []byte(`"result"`)) {
			t.Errorf("%s: no result: %s", route, raw)
		}
		if c.Ledger.BC.Head().Number() == 0 {
			t.Errorf("%s mined no blocks", c.Name)
		}
		// fork_echoCandidates needs peers: every backend must be linked to
		// the other two.
		raw = post(t, built.Server, route, `{"jsonrpc":"2.0","id":2,"method":"fork_echoCandidates","params":["0x1","0x10"]}`)
		for _, other := range built.Chains {
			if other.Name == c.Name {
				continue
			}
			if !bytes.Contains(raw, []byte(`"`+other.Name+`"`)) {
				t.Errorf("%s echo candidates do not list peer %s: %s", c.Name, other.Name, raw)
			}
		}
	}
	heads := map[string]string{}
	for _, c := range built.Chains {
		heads[c.Name] = c.Ledger.BC.Head().Hash().String()
	}
	built.Server.Close()

	reopened, err := Open(threeWayScenario(dataDir), rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("Open after restart: %v", err)
	}
	defer reopened.Server.Close()
	if reopened.Engine != nil {
		t.Fatal("Open ran a simulation engine")
	}
	if len(reopened.Chains) != 3 {
		t.Fatalf("reopened %d chains, want 3", len(reopened.Chains))
	}
	for _, c := range reopened.Chains {
		if got := c.Ledger.BC.Head().Hash().String(); got != heads[c.Name] {
			t.Errorf("%s head diverged after restart: %s vs %s", c.Name, got, heads[c.Name])
		}
	}
}
