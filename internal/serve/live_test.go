package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"forkwatch/internal/export"
	"forkwatch/internal/faultnet"
	"forkwatch/internal/live"
	"forkwatch/internal/live/feed"
	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
)

// liveThreeWay is the three-partition convergence scenario: enough
// cross-partition traffic for echoes, in-memory storage so the test is
// all about the wire, and a caller-chosen engine parallelism.
func liveThreeWay(par int) *sim.Scenario {
	sc := sim.NewScenario(7, 2)
	sc.Mode = sim.ModeFull
	sc.DayLength = 3600
	sc.Users = 30
	sc.Parallelism = par
	sc.Partitions = []sim.PartitionSpec{
		{Name: "ONE", ChainID: 1, DAOSupport: true, Price0: 10, RallyShare: 1,
			PrimaryFraction: 0.5, TxPerDay: 30, EIP155Day: -1, Pools: 20, PoolAlpha: 1, PoolCap: 0.24},
		{Name: "TWO", ChainID: 2, ShareAtFork: 0.2, Price0: 5, RallyShare: 1,
			PrimaryFraction: 0.3, TxPerDay: 12, EIP155Day: -1, Pools: 15, PoolAlpha: 1.2, PoolCap: 0.24},
		{Name: "TRI", ChainID: 3, ShareAtFork: 0.1, Price0: 2, RallyShare: 1,
			PrimaryFraction: 0.1, TxPerDay: 8, EIP155Day: -1, Pools: 10, PoolAlpha: 1.3, PoolCap: 0.3},
	}
	return sc
}

// batchTables runs the batch exporter over a Recorder's capture — the
// ground truth every streaming follower must reproduce byte for byte.
func batchTables(t *testing.T, rec *export.Recorder) (blocks, txs, days []byte) {
	t.Helper()
	var b, x, d bytes.Buffer
	if err := export.WriteBlocks(&b, rec.Blocks); err != nil {
		t.Fatal(err)
	}
	if err := export.WriteTxs(&x, rec.Txs); err != nil {
		t.Fatal(err)
	}
	if err := export.WriteDays(&d, rec.Days); err != nil {
		t.Fatal(err)
	}
	return b.Bytes(), x.Bytes(), d.Bytes()
}

// pollFollower replays the archive's event feed through the stateless
// fork_liveEvents read into a local analyzer until the run's EOF
// marker. Transport errors are retried from the same cursor — the call
// is idempotent, which is the whole point of the stateless read — so it
// converges even over a lossy wire.
func pollFollower(client *http.Client, url string, an *live.Analyzer, deadline time.Time) error {
	cursor := uint64(0)
	id := 0
	for {
		if time.Now().After(deadline) {
			return fmt.Errorf("follower deadline exceeded at cursor %d", cursor)
		}
		id++
		body := fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"fork_liveEvents","params":["events",%d,4096]}`, id, cursor)
		resp, err := client.Post(url, "application/json", strings.NewReader(body))
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		raw, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		var envelope struct {
			Result struct {
				Events []feed.Event `json:"events"`
				Cursor uint64       `json:"cursor"`
				Gap    bool         `json:"gap"`
			} `json:"result"`
			Error *rpc.Error `json:"error"`
		}
		if err := json.Unmarshal(raw, &envelope); err != nil {
			// Truncated by injected loss; the cursor did not move.
			continue
		}
		if envelope.Error != nil {
			return fmt.Errorf("fork_liveEvents: %v", envelope.Error)
		}
		if envelope.Result.Gap {
			return fmt.Errorf("cursor %d fell off the replay ring", cursor)
		}
		for _, ev := range envelope.Result.Events {
			if err := an.Apply(ev); err != nil {
				return err
			}
			if ev.Kind == feed.KindEOF {
				return nil
			}
		}
		cursor = envelope.Result.Cursor
		if len(envelope.Result.Events) == 0 {
			time.Sleep(5 * time.Millisecond)
		}
	}
}

// streamFollower consumes the persistent NDJSON transport at
// GET /<route>/stream into a local analyzer until EOF.
func streamFollower(routeURL string, an *live.Analyzer) error {
	resp, err := http.Get(routeURL + "/stream?stream=events&cursor=0")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("stream: HTTP %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var note struct {
			Method string `json:"method"`
			Params struct {
				Event *feed.Event `json:"event"`
				Gap   bool        `json:"gap"`
			} `json:"params"`
		}
		if err := json.Unmarshal(sc.Bytes(), &note); err != nil {
			return fmt.Errorf("stream line %q: %w", sc.Bytes(), err)
		}
		if note.Method != "fork_subscription" {
			continue // header line
		}
		if note.Params.Gap {
			return fmt.Errorf("stream reported a replay gap")
		}
		if note.Params.Event == nil {
			continue
		}
		if err := an.Apply(*note.Params.Event); err != nil {
			return err
		}
		if note.Params.Event.Kind == feed.KindEOF {
			return nil
		}
	}
	return fmt.Errorf("stream ended before EOF: %v", sc.Err())
}

// checkConverged asserts a follower's three CSV tables are
// byte-identical to the batch export.
func checkConverged(t *testing.T, name string, an *live.Analyzer, wb, wx, wd []byte) {
	t.Helper()
	if got := an.BlocksCSV(); !bytes.Equal(got, wb) {
		t.Errorf("%s: blocks diverge (%d vs %d bytes)", name, len(got), len(wb))
	}
	if got := an.TxsCSV(); !bytes.Equal(got, wx) {
		t.Errorf("%s: txs diverge (%d vs %d bytes)", name, len(got), len(wx))
	}
	if got := an.DaysCSV(); !bytes.Equal(got, wd) {
		t.Errorf("%s: days diverge (%d vs %d bytes)", name, len(got), len(wd))
	}
	if !an.Snapshot().Complete {
		t.Errorf("%s: analyzer missed EOF", name)
	}
}

// TestLiveConvergenceOverRPC is the measurement-plane acceptance test:
// the archive serves WHILE the engine simulates, one follower replays
// the feed through stateless polls and another through the persistent
// NDJSON stream, and both must end byte-identical to the batch CSV
// export — at engine parallelism 1 and N.
func TestLiveConvergenceOverRPC(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity live run")
	}
	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			sc := liveThreeWay(par)
			res, run, err := BuildLive(sc, rpc.ServerConfig{})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(res.Server)
			defer ts.Close()
			defer res.Close() // drains streams before ts.Close waits on them
			rec := &export.Recorder{}
			res.Engine.AddObserver(rec)

			polled := live.NewAnalyzer(sc.Epoch, live.Options{})
			streamed := live.NewAnalyzer(sc.Epoch, live.Options{})
			deadline := time.Now().Add(60 * time.Second)
			client := &http.Client{Timeout: 5 * time.Second}
			errs := make(chan error, 2)
			go func() { errs <- pollFollower(client, ts.URL+"/one", polled, deadline) }()
			go func() { errs <- streamFollower(ts.URL+"/tri", streamed) }()

			if err := run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			for i := 0; i < 2; i++ {
				if err := <-errs; err != nil {
					t.Fatalf("follower: %v", err)
				}
			}

			if len(rec.Blocks) == 0 || len(rec.Days) == 0 {
				t.Fatal("recorder captured nothing")
			}
			wb, wx, wd := batchTables(t, rec)
			checkConverged(t, "poll", polled, wb, wx, wd)
			checkConverged(t, "stream", streamed, wb, wx, wd)

			// The server-side snapshot agrees on shape and completion.
			raw := post(t, res.Server, "/one", `{"jsonrpc":"2.0","id":1,"method":"fork_liveSnapshot","params":[]}`)
			var snap struct {
				Result struct {
					Complete bool `json:"complete"`
					Chains   []struct {
						Chain string `json:"chain"`
					} `json:"chains"`
				} `json:"result"`
			}
			if err := json.Unmarshal(raw, &snap); err != nil {
				t.Fatalf("snapshot: %v: %s", err, raw)
			}
			if len(snap.Result.Chains) != 3 || !snap.Result.Complete {
				t.Errorf("snapshot: chains=%d complete=%v", len(snap.Result.Chains), snap.Result.Complete)
			}
		})
	}
}

// tcpDialer lets faultnet wrap real TCP connections.
type tcpDialer struct{}

func (tcpDialer) Dial(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }

// TestChaosLiveSubscriptionLoss reruns the poll-follower convergence
// with 20% frame loss injected on the subscription path (every response
// the archive writes). Dropped responses surface as client timeouts or
// truncated bodies; the stateless cursor makes each retry safe, so the
// follower must still converge byte-identically.
func TestChaosLiveSubscriptionLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity live run under injected loss")
	}
	sc := liveThreeWay(2)
	res, run, err := BuildLive(sc, rpc.ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	fnet := faultnet.New(tcpDialer{}, faultnet.Faults{Seed: 99, DropRate: 0.20})
	ts := httptest.NewUnstartedServer(res.Server)
	ts.Listener = fnet.Endpoint("archive").WrapListener(ts.Listener)
	ts.Start()
	defer ts.Close()
	defer res.Close()
	rec := &export.Recorder{}
	res.Engine.AddObserver(rec)

	remote := live.NewAnalyzer(sc.Epoch, live.Options{})
	deadline := time.Now().Add(90 * time.Second)
	// Short timeout + no keep-alive: a dropped response costs one quick
	// retry on a fresh connection instead of a wedged stream.
	client := &http.Client{
		Timeout:   time.Second,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	errs := make(chan error, 1)
	go func() { errs <- pollFollower(client, ts.URL+"/two", remote, deadline) }()

	if err := run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if err := <-errs; err != nil {
		t.Fatalf("follower under loss: %v", err)
	}

	wb, wx, wd := batchTables(t, rec)
	checkConverged(t, "lossy poll", remote, wb, wx, wd)
	if fnet.Stats().Dropped == 0 {
		t.Error("fault injection never fired — the test proved nothing")
	}
}
