package serve

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	"forkwatch/internal/discover"
	"forkwatch/internal/faultnet"
	"forkwatch/internal/keccak"
	"forkwatch/internal/live/feed"
	"forkwatch/internal/p2p"
	"forkwatch/internal/prng"
	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
	"forkwatch/internal/types"
)

// This file is the replicated serving plane: a primary process serves
// the archive it simulated (or reopened), and replica processes follow
// its head over the internal/p2p sync protocol — one p2p mesh per chain,
// separated by network id — importing every block into their own db.KV
// store so each replica serves the full RPC surface by itself.
//
// The failure contract:
//
//   - a replica more than StalenessBound blocks behind the last primary
//     head it has seen (or that has never reached its primary) reports
//     degraded on /readyz and tags every RPC response with a `staleness`
//     field instead of silently answering from an old head;
//   - repeated dial/sync failures open a circuit breaker that paces the
//     reconnect loop, and repeated storage failures open the rpc layer's
//     per-route breaker, shedding with typed -32013 errors;
//   - Close drains in-flight RPC work, stops the follow loops and closes
//     the stores (flushing disk segments) — never dying mid-commit.

// Transport is the listen/dial seam the replica tier runs over: real TCP
// in production, MemNet (optionally behind faultnet) in tests.
type Transport struct {
	// Listen opens the accept side of addr.
	Listen func(addr string) (net.Listener, error)
	// Dialer reaches other nodes' listen addresses.
	Dialer p2p.Dialer
}

// TCPTransport is the production transport.
func TCPTransport(dialTimeout time.Duration) Transport {
	return Transport{
		Listen: func(addr string) (net.Listener, error) { return net.Listen("tcp", addr) },
		Dialer: p2p.TCPDialer(dialTimeout),
	}
}

// FaultyTransport routes tr through a faultnet.Net: dials go out through
// the node's fault-injecting endpoint, accepted connections inject on
// their outbound half. The Net must have been built over tr.Dialer
// (faultnet.New(tr.Dialer, faults)); self labels this node's side of
// every connection for partition scripting and seed derivation.
func FaultyTransport(tr Transport, n *faultnet.Net, self string) Transport {
	return Transport{
		Listen: func(addr string) (net.Listener, error) {
			ln, err := tr.Listen(addr)
			if err != nil {
				return nil, err
			}
			return n.Endpoint(addr).WrapListener(ln), nil
		},
		Dialer: n.Endpoint(self),
	}
}

// p2pNodeID derives a stable node identity from a transport address, so
// both ends of the tier agree on the primary's identity without an
// out-of-band exchange.
func p2pNodeID(label string) discover.NodeID {
	h := keccak.Sum256([]byte(label))
	return discover.IDFromHash(types.BytesToHash(h[:]))
}

// PrimaryConfig configures ServePrimary.
type PrimaryConfig struct {
	// Addrs is one p2p listen address per served chain, in partition
	// order. Each chain gets its own mesh: replicas of chain i dial
	// Addrs[i].
	Addrs []string
	// Transport provides the listeners and is required.
	Transport Transport
	// NetworkIDBase separates the per-chain meshes: chain i handshakes
	// with network id NetworkIDBase+i (default 1). All partitions share a
	// genesis, so the network id — not the genesis check — is what keeps
	// a replica of one chain from syncing another.
	NetworkIDBase uint64
	// MaxPeers bounds replicas per chain (default 16).
	MaxPeers int
	// TuneP2P, when set, adjusts each chain's p2p.Config before the
	// server starts (tests shrink the timeouts).
	TuneP2P func(*p2p.Config)
	// Logf receives debug lines.
	Logf func(format string, args ...any)
}

// Primary is the serving side of the replica tier: one p2p server per
// chain, accepting replica connections and serving their block-range
// pulls from the archive.
type Primary struct {
	servers   []*p2p.Server
	listeners []net.Listener
}

// ServePrimary exposes a built (or reopened) archive's chains for
// replicas to sync from. The Result keeps serving RPC as before; the
// primary only adds the sync plane.
func ServePrimary(res *Result, cfg PrimaryConfig) (*Primary, error) {
	if len(cfg.Addrs) != len(res.Chains) {
		return nil, fmt.Errorf("serve: %d p2p addrs for %d chains", len(cfg.Addrs), len(res.Chains))
	}
	if cfg.Transport.Listen == nil {
		return nil, fmt.Errorf("serve: primary transport has no listener")
	}
	if cfg.NetworkIDBase == 0 {
		cfg.NetworkIDBase = 1
	}
	if cfg.MaxPeers <= 0 {
		cfg.MaxPeers = 16
	}
	p := &Primary{}
	for i, c := range res.Chains {
		addr := cfg.Addrs[i]
		pcfg := p2p.Config{
			Self:      discover.Node{ID: p2pNodeID(addr), Addr: addr},
			NetworkID: cfg.NetworkIDBase + uint64(i),
			MaxPeers:  cfg.MaxPeers,
			Backend:   p2p.NewChainBackend(c.Ledger.BC),
			Dialer:    cfg.Transport.Dialer,
			Logf:      cfg.Logf,
		}
		if cfg.TuneP2P != nil {
			cfg.TuneP2P(&pcfg)
		}
		srv := p2p.NewServer(pcfg)
		ln, err := cfg.Transport.Listen(addr)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("serve: primary listen %s: %w", addr, err)
		}
		p.servers = append(p.servers, srv)
		p.listeners = append(p.listeners, ln)
		go srv.Serve(ln) //nolint:errcheck // exits when the listener closes
	}
	return p, nil
}

// Close stops accepting replicas and tears down the sync plane.
func (p *Primary) Close() {
	for _, srv := range p.servers {
		srv.Close()
	}
	for _, ln := range p.listeners {
		ln.Close()
	}
}

// ReplicaConfig configures NewReplica.
type ReplicaConfig struct {
	// Name uniquely labels this replica on the transport.
	Name string
	// PrimaryAddrs are the primary's per-chain p2p listen addresses, in
	// the scenario's partition order.
	PrimaryAddrs []string
	// Transport provides the dialer and is required.
	Transport Transport
	// NetworkIDBase must match the primary's (default 1).
	NetworkIDBase uint64
	// StalenessBound is K: lagging more than K blocks behind the best
	// primary head seen flips the route to degraded (default 8).
	StalenessBound uint64
	// PollInterval paces the follow loop: reconnect checks, lag
	// accounting and sync nudges (default 500ms).
	PollInterval time.Duration
	// DataDir overrides the scenario's disk directory — a replica must
	// never share the primary's store. Required for the disk backend.
	DataDir string
	// WrapKV, when set, wraps each chain's store before use (chaos tests
	// inject storage faults here).
	WrapKV func(chainName string, kv db.KV) db.KV
	// BreakerThreshold/BreakerCooldown tune the sync-dial circuit
	// breaker (defaults 8 / 2s): repeated failed reconnects stop being
	// attempted for a cooldown instead of hammering a dead primary.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// TuneP2P adjusts each chain's p2p.Config before the server starts.
	TuneP2P func(*p2p.Config)
	// Logf receives debug lines.
	Logf func(format string, args ...any)
}

// syncTracker measures one chain's lag behind the primary. The target is
// the highest primary head ever observed, so a replica that loses its
// primary mid-sync still knows it is behind.
type syncTracker struct {
	bc     *chain.Blockchain
	bound  uint64
	seen   atomic.Bool
	target atomic.Uint64
}

func (t *syncTracker) observe(head uint64) {
	t.seen.Store(true)
	for {
		cur := t.target.Load()
		if head <= cur || t.target.CompareAndSwap(cur, head) {
			return
		}
	}
}

// staleness implements rpc.StalenessFunc: a replica that has never seen
// its primary is degraded with unknown (0) lag; one that has is degraded
// when more than bound blocks behind the best head it ever saw.
func (t *syncTracker) staleness() (uint64, bool) {
	if !t.seen.Load() {
		return 0, true
	}
	local := t.bc.Head().Number()
	target := t.target.Load()
	if target <= local {
		return 0, false
	}
	lag := target - local
	return lag, lag > t.bound
}

// Replica is a follower process: its own stores, its own RPC server, its
// head pulled from the primary. Embeds Result, so everything that serves
// a primary serves a replica.
type Replica struct {
	Result
	cfg       ReplicaConfig
	epoch     uint64 // fork unix time (relayed heads derive Day from it)
	dayLen    uint64
	servers   []*p2p.Server
	trackers  []*syncTracker
	relays    []*headRelay
	quit      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// headRelay tracks, per chain, which canonical blocks the follow loop
// has already relayed onto the replica's live feed.
type headRelay struct {
	lastPub  uint64 // highest block number published
	lastTime uint64 // its timestamp (for the next block's Delta)
}

// NewReplica builds a replica of sc's chains: fresh (or reopened, when
// DataDir already holds them) stores seeded with the shared genesis, an
// RPC server mounting every chain, and one follow loop per chain that
// connects to the primary, tracks staleness and keeps the sync pulled.
// The scenario is only consulted for the chain configs and genesis — the
// replica never simulates; every block arrives over the wire.
func NewReplica(sc *sim.Scenario, cfg ReplicaConfig, rcfg rpc.ServerConfig) (*Replica, error) {
	if sc.Mode != sim.ModeFull {
		return nil, fmt.Errorf("serve: scenario mode must be full (replicas serve real chains)")
	}
	if cfg.Transport.Dialer == nil {
		return nil, fmt.Errorf("serve: replica transport has no dialer")
	}
	specs := sc.PartitionSpecs()
	if len(cfg.PrimaryAddrs) != len(specs) {
		return nil, fmt.Errorf("serve: %d primary addrs for %d chains", len(cfg.PrimaryAddrs), len(specs))
	}
	if cfg.NetworkIDBase == 0 {
		cfg.NetworkIDBase = 1
	}
	if cfg.StalenessBound == 0 {
		cfg.StalenessBound = 8
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 500 * time.Millisecond
	}
	if cfg.BreakerThreshold == 0 {
		cfg.BreakerThreshold = 8
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = 2 * time.Second
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}

	cfgs := sim.PartitionChainConfigs(sc)
	gen := sim.NewWorkload(sc).Genesis()
	chains := make([]ServedChain, len(specs))
	for i, sp := range specs {
		scfg := sc.Storage
		if scfg.Backend == db.BackendDisk {
			if cfg.DataDir == "" {
				return nil, fmt.Errorf("serve: a disk-backed replica needs its own DataDir (it must not share the primary's)")
			}
			scfg.DataDir = sim.ChainDataDir(cfg.DataDir, sp.Name)
		}
		kv, err := db.Open(scfg)
		if err != nil {
			return nil, fmt.Errorf("serve: opening %s replica store: %w", sp.Name, err)
		}
		if cfg.WrapKV != nil {
			kv = cfg.WrapKV(sp.Name, kv)
		}
		led, err := sim.OpenFullLedger(cfgs[i], sc, sp.Name, kv)
		if errors.Is(err, chain.ErrNoChain) {
			led, err = sim.NewFullLedgerWithDB(cfgs[i], gen, prng.New(sc.Seed, "seal", sp.Name), kv)
		}
		if err != nil {
			return nil, fmt.Errorf("serve: building %s replica chain: %w", sp.Name, err)
		}
		chains[i] = ServedChain{Name: sp.Name, Ledger: led}
	}

	srv, backends := mount(rcfg, chains)
	// The replica's own live plane feeds from the follow loops: every
	// newly synced canonical block is relayed as a head event, so
	// subscriptions work on the replica tier too (staleness-stamped by
	// the same source as plain responses when the replica is degraded).
	plane := newPlane(srv, backends, sc.Epoch)
	r := &Replica{
		Result: Result{Server: srv, Chains: chains, Live: plane},
		cfg:    cfg,
		epoch:  sc.Epoch,
		dayLen: sc.DayLength,
		quit:   make(chan struct{}),
	}
	for _, c := range chains {
		// Start relaying AFTER the boot head: a reopened store's history
		// predates this process, and followers wanting it poll the
		// primary's archive instead.
		head := c.Ledger.BC.Head()
		r.relays = append(r.relays, &headRelay{lastPub: head.Number(), lastTime: head.Header.Time})
	}
	reg := r.Server.Registry()
	for i, c := range chains {
		route := strings.ToLower(c.Name)
		tracker := &syncTracker{bc: c.Ledger.BC, bound: cfg.StalenessBound}
		r.trackers = append(r.trackers, tracker)
		r.Server.SetStaleness(route, tracker.staleness)
		reg.GaugeFunc("sync."+route+".lag_blocks", func() float64 {
			lag, _ := tracker.staleness()
			return float64(lag)
		})

		pcfg := p2p.Config{
			Self:      discover.Node{ID: p2pNodeID(cfg.Name + "/" + route), Addr: cfg.Name},
			NetworkID: cfg.NetworkIDBase + uint64(i),
			MaxPeers:  4,
			Backend:   p2p.NewChainBackend(c.Ledger.BC),
			Dialer:    cfg.Transport.Dialer,
			Logf:      cfg.Logf,
		}
		if cfg.TuneP2P != nil {
			cfg.TuneP2P(&pcfg)
		}
		r.servers = append(r.servers, p2p.NewServer(pcfg))
	}
	// Aggregate gauges: worst-chain lag and the node's degraded verdict
	// (these override the zero defaults the rpc server pre-registers).
	reg.GaugeFunc("sync.lag_blocks", func() float64 {
		var max uint64
		for _, t := range r.trackers {
			if lag, _ := t.staleness(); lag > max {
				max = lag
			}
		}
		return float64(max)
	})
	reg.GaugeFunc("serve.degraded", func() float64 {
		for _, t := range r.trackers {
			if _, degraded := t.staleness(); degraded {
				return 1
			}
		}
		return 0
	})

	for i := range chains {
		r.wg.Add(1)
		go r.follow(i)
	}
	return r, nil
}

// follow is one chain's sync loop: keep a connection to the primary
// (paced by a circuit breaker when it keeps failing), record the
// advertised head for staleness accounting, and nudge the pull so a
// dropped frame never strands the sync.
func (r *Replica) follow(i int) {
	defer r.wg.Done()
	srv, tracker := r.servers[i], r.trackers[i]
	route := strings.ToLower(r.Chains[i].Name)
	addr := r.cfg.PrimaryAddrs[i]
	primary := discover.Node{ID: p2pNodeID(addr), Addr: addr}
	breaker := rpc.NewBreaker(r.cfg.BreakerThreshold, r.cfg.BreakerCooldown)
	reg := r.Server.Registry()
	ticker := time.NewTicker(r.cfg.PollInterval)
	defer ticker.Stop()
	for {
		select {
		case <-r.quit:
			return
		case <-ticker.C:
		}
		if srv.PeerCount() == 0 {
			if !breaker.Allow() {
				continue // sync breaker open: stop hammering a dead primary
			}
			err := srv.Connect(primary)
			if errors.Is(err, p2p.ErrDialBackoff) {
				continue // p2p's own dial backoff is pacing; no verdict
			}
			reg.Counter("sync." + route + ".dials").Inc()
			switch {
			case err == nil:
				breaker.Success()
				reg.Counter("sync." + route + ".reconnects").Inc()
			case errors.Is(err, p2p.ErrAlreadyConnected):
				breaker.Success()
			default:
				breaker.Fail()
				r.cfg.Logf("replica[%s/%s]: dial primary: %v", r.cfg.Name, route, err)
				continue
			}
		}
		if head, _, ok := srv.BestPeerHead(); ok {
			tracker.observe(head)
		}
		srv.SyncNow()
		r.relayHeads(i)
	}
}

// relayHeads publishes every canonical block the sync imported since
// the last relay onto the replica's live feed, rebuilding the head
// events exactly as the engine's observer delivery would have built
// them (Day from the fork epoch, Delta from the parent's timestamp,
// the contract/chain-bound markers from the transaction shape).
func (r *Replica) relayHeads(i int) {
	relay := r.relays[i]
	bc := r.Chains[i].Ledger.BC
	head := bc.Head().Number()
	if head <= relay.lastPub {
		return
	}
	name := r.Chains[i].Name
	epoch, dayLen := r.epoch, r.dayLen
	for _, b := range bc.CanonicalBlocks(relay.lastPub+1, head) {
		t := b.Header.Time
		day := 0
		if t >= epoch && dayLen > 0 {
			day = int((t - epoch) / dayLen)
		}
		h := &feed.HeadEvent{
			Chain:      name,
			Day:        day,
			Number:     b.Number(),
			Time:       t,
			Delta:      t - relay.lastTime,
			Difficulty: b.Header.Difficulty.String(),
			Coinbase:   b.Header.Coinbase.Hex(),
		}
		if len(b.Txs) > 0 {
			h.Txs = make([]feed.TxInfo, len(b.Txs))
			for j, tx := range b.Txs {
				h.Txs[j] = feed.TxInfo{
					Hash:       tx.Hash().Hex(),
					From:       tx.From.Hex(),
					Contract:   tx.To == nil || len(tx.Data) > 0,
					ChainBound: tx.ChainID != 0,
				}
			}
		}
		r.Live.PublishHead(h)
		relay.lastPub = b.Number()
		relay.lastTime = t
	}
}

// Staleness exposes per-chain (lag, degraded) snapshots in partition
// order (tests and operators read them; serving uses the same source).
func (r *Replica) Staleness() []struct {
	Lag      uint64
	Degraded bool
} {
	out := make([]struct {
		Lag      uint64
		Degraded bool
	}, len(r.trackers))
	for i, t := range r.trackers {
		out[i].Lag, out[i].Degraded = t.staleness()
	}
	return out
}

// Close stops the follow loops, drains the RPC server and closes the
// stores. Safe to call more than once.
func (r *Replica) Close() {
	r.closeOnce.Do(func() {
		close(r.quit)
		r.wg.Wait()
		for _, srv := range r.servers {
			srv.Close()
		}
		r.Result.Close()
	})
}
