// Package serve boots the JSON-RPC archive over a simulated partition
// set: it runs a full-fidelity scenario to materialise every chain, then
// mounts them all on one rpc.Server — the single-process stand-in for
// the paper's paired full nodes. cmd/forkserve and cmd/forkload's
// self-serve mode share this path. With the disk storage backend the
// archive is restartable: Open remounts chains persisted by an earlier
// Build without re-simulating, and OpenOrBuild picks automatically.
package serve

import (
	"errors"
	"fmt"
	"io"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	_ "forkwatch/internal/db/diskdb" // register the disk backend with db.Open
	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
)

// ServedChain is one mounted partition: its name and the live ledger
// behind its route.
type ServedChain struct {
	Name   string
	Ledger *sim.FullLedger
}

// Result is a booted archive: the server (caller owns Close) and the
// live chains behind it, in partition order.
type Result struct {
	Server *rpc.Server
	Chains []ServedChain
	Engine *sim.Engine
}

// Ledger returns the named chain's ledger, or nil.
func (r *Result) Ledger(name string) *sim.FullLedger {
	for _, c := range r.Chains {
		if c.Name == name {
			return c.Ledger
		}
	}
	return nil
}

// Close shuts the archive down gracefully: drain the RPC server (stop
// accepting, finish in-flight), stop the worker pool, then close every
// chain's store so the disk backend flushes and fsyncs its segments —
// the shutdown path never dies mid-commit.
func (r *Result) Close() {
	r.Server.Drain()
	r.Server.Close()
	for _, c := range r.Chains {
		if err := closeKV(c.Ledger.BC.DB()); err != nil {
			// The WAL already made the store crash-consistent; a failed
			// flush costs recovery time on reopen, not data.
			fmt.Printf("serve: closing %s store: %v\n", c.Name, err)
		}
	}
}

// closeKV walks a store's wrapper chain (retry, fault injection, cache)
// to the first layer that can close, and closes it.
func closeKV(kv db.KV) error {
	for kv != nil {
		if c, ok := kv.(io.Closer); ok {
			return c.Close()
		}
		switch w := kv.(type) {
		case interface{ Inner() db.KV }:
			kv = w.Inner()
		case interface{ Backend() db.KV }:
			kv = w.Backend()
		default:
			return nil
		}
	}
	return nil
}

// mount registers every chain on a new server, cross-linking all ordered
// backend pairs for the fork_* joins, and routes each at its lowercase
// name.
func mount(cfg rpc.ServerConfig, chains []ServedChain) *rpc.Server {
	srv := rpc.NewServer(cfg)
	backends := make([]*rpc.Backend, len(chains))
	for i, c := range chains {
		backends[i] = rpc.NewBackend(c.Name, c.Ledger.BC)
	}
	for i, b := range backends {
		for j, p := range backends {
			if i != j {
				b.AddPeer(p)
			}
		}
		srv.RegisterChain(b)
	}
	return srv
}

// Build runs sc (which must be ModeFull — the archive needs real blocks
// and tries) and mounts every resulting chain on a new server built from
// cfg. The returned server routes each partition at its lowercase name,
// all cross-linked as peers for the fork_* joins.
func Build(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Mode != sim.ModeFull {
		return nil, fmt.Errorf("serve: scenario mode must be full (the archive serves real chains)")
	}
	eng, err := sim.New(sc)
	if err != nil {
		return nil, fmt.Errorf("serve: building engine: %w", err)
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: running scenario: %w", err)
	}
	names := eng.PartitionNames()
	chains := make([]ServedChain, len(names))
	for i, name := range names {
		led, ok := eng.LedgerAt(i).(*sim.FullLedger)
		if !ok {
			return nil, fmt.Errorf("serve: %s ledger is %T, want *sim.FullLedger", name, eng.LedgerAt(i))
		}
		chains[i] = ServedChain{Name: name, Ledger: led}
	}
	return &Result{Server: mount(cfg, chains), Chains: chains, Engine: eng}, nil
}

// Open remounts an archive that an earlier Build persisted through the
// disk backend: every chain is reopened from sc.Storage.DataDir (each
// chain lives in its own subdirectory) via chain.Open — WAL redo, no
// re-simulation — and served exactly as Build would serve them. The
// scenario must use the disk backend and full mode; it is otherwise only
// consulted for the chain configs and the data directory, so the restart
// serves whatever the directory durably holds. Result.Engine is nil: no
// simulation ran.
//
// A directory holding no chain fails with chain.ErrNoChain (wrapped);
// OpenOrBuild uses that to fall back to a fresh Build.
func Open(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Mode != sim.ModeFull {
		return nil, fmt.Errorf("serve: scenario mode must be full (the archive serves real chains)")
	}
	if sc.Storage.Backend != db.BackendDisk {
		return nil, fmt.Errorf("serve: reopening an archive requires the %q storage backend, not %q", db.BackendDisk, sc.Storage.Backend)
	}
	cfgs := sim.PartitionChainConfigs(sc)
	specs := sc.PartitionSpecs()
	chains := make([]ServedChain, len(specs))
	for i, sp := range specs {
		scfg := sc.Storage
		scfg.DataDir = sim.ChainDataDir(scfg.DataDir, sp.Name)
		kv, err := db.Open(scfg)
		if err != nil {
			return nil, fmt.Errorf("serve: opening %s store: %w", sp.Name, err)
		}
		led, err := sim.OpenFullLedger(cfgs[i], sc, sp.Name, kv)
		if err != nil {
			return nil, fmt.Errorf("serve: reopening %s chain: %w", sp.Name, err)
		}
		chains[i] = ServedChain{Name: sp.Name, Ledger: led}
	}
	return &Result{Server: mount(cfg, chains), Chains: chains}, nil
}

// OpenOrBuild reopens a persisted archive when the scenario's disk data
// directory already holds one, and otherwise builds it by running the
// simulation (which, on the disk backend, persists it for the next
// restart). Non-disk scenarios always build.
func OpenOrBuild(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Storage.Backend != db.BackendDisk {
		return Build(sc, cfg)
	}
	res, err := Open(sc, cfg)
	if err == nil {
		return res, nil
	}
	if !errors.Is(err, chain.ErrNoChain) {
		return nil, err
	}
	return Build(sc, cfg)
}
