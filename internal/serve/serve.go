// Package serve boots the JSON-RPC archive over a simulated partition:
// it runs a full-fidelity scenario to materialise the two chains, then
// mounts both on one rpc.Server — the single-process stand-in for the
// paper's paired ETH/ETC full nodes. cmd/forkserve and cmd/forkload's
// self-serve mode share this path.
package serve

import (
	"fmt"

	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
)

// Result is a booted archive: the server (caller owns Close) and the two
// live chains behind it.
type Result struct {
	Server *rpc.Server
	ETH    *sim.FullLedger
	ETC    *sim.FullLedger
	Engine *sim.Engine
}

// Build runs sc (which must be ModeFull — the archive needs real blocks
// and tries) and mounts both resulting chains on a new server built from
// cfg. The returned server routes /eth and /etc, cross-linked as peers
// for the fork_* joins.
func Build(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Mode != sim.ModeFull {
		return nil, fmt.Errorf("serve: scenario mode must be full (the archive serves real chains)")
	}
	eng, err := sim.New(sc)
	if err != nil {
		return nil, fmt.Errorf("serve: building engine: %w", err)
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: running scenario: %w", err)
	}
	eth, ok := eng.ETH.(*sim.FullLedger)
	if !ok {
		return nil, fmt.Errorf("serve: ETH ledger is %T, want *sim.FullLedger", eng.ETH)
	}
	etc, ok := eng.ETC.(*sim.FullLedger)
	if !ok {
		return nil, fmt.Errorf("serve: ETC ledger is %T, want *sim.FullLedger", eng.ETC)
	}
	srv := rpc.NewServer(cfg)
	beEth := rpc.NewBackend("ETH", eth.BC)
	beEtc := rpc.NewBackend("ETC", etc.BC)
	beEth.SetPeer(beEtc)
	beEtc.SetPeer(beEth)
	srv.RegisterChain(beEth)
	srv.RegisterChain(beEtc)
	return &Result{Server: srv, ETH: eth, ETC: etc, Engine: eng}, nil
}
