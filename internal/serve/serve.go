// Package serve boots the JSON-RPC archive over a simulated partition:
// it runs a full-fidelity scenario to materialise the two chains, then
// mounts both on one rpc.Server — the single-process stand-in for the
// paper's paired ETH/ETC full nodes. cmd/forkserve and cmd/forkload's
// self-serve mode share this path. With the disk storage backend the
// archive is restartable: Open remounts chains persisted by an earlier
// Build without re-simulating, and OpenOrBuild picks automatically.
package serve

import (
	"errors"
	"fmt"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	_ "forkwatch/internal/db/diskdb" // register the disk backend with db.Open
	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
)

// Result is a booted archive: the server (caller owns Close) and the two
// live chains behind it.
type Result struct {
	Server *rpc.Server
	ETH    *sim.FullLedger
	ETC    *sim.FullLedger
	Engine *sim.Engine
}

// Build runs sc (which must be ModeFull — the archive needs real blocks
// and tries) and mounts both resulting chains on a new server built from
// cfg. The returned server routes /eth and /etc, cross-linked as peers
// for the fork_* joins.
func Build(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Mode != sim.ModeFull {
		return nil, fmt.Errorf("serve: scenario mode must be full (the archive serves real chains)")
	}
	eng, err := sim.New(sc)
	if err != nil {
		return nil, fmt.Errorf("serve: building engine: %w", err)
	}
	if err := eng.Run(); err != nil {
		return nil, fmt.Errorf("serve: running scenario: %w", err)
	}
	eth, ok := eng.ETH.(*sim.FullLedger)
	if !ok {
		return nil, fmt.Errorf("serve: ETH ledger is %T, want *sim.FullLedger", eng.ETH)
	}
	etc, ok := eng.ETC.(*sim.FullLedger)
	if !ok {
		return nil, fmt.Errorf("serve: ETC ledger is %T, want *sim.FullLedger", eng.ETC)
	}
	srv := rpc.NewServer(cfg)
	beEth := rpc.NewBackend("ETH", eth.BC)
	beEtc := rpc.NewBackend("ETC", etc.BC)
	beEth.SetPeer(beEtc)
	beEtc.SetPeer(beEth)
	srv.RegisterChain(beEth)
	srv.RegisterChain(beEtc)
	return &Result{Server: srv, ETH: eth, ETC: etc, Engine: eng}, nil
}

// Open remounts an archive that an earlier Build persisted through the
// disk backend: both chains are reopened from sc.Storage.DataDir (each
// chain lives in its own subdirectory) via chain.Open — WAL redo, no
// re-simulation — and served exactly as Build would serve them. The
// scenario must use the disk backend and full mode; it is otherwise only
// consulted for the chain configs and the data directory, so the restart
// serves whatever the directory durably holds. Result.Engine is nil: no
// simulation ran.
//
// A directory holding no chain fails with chain.ErrNoChain (wrapped);
// OpenOrBuild uses that to fall back to a fresh Build.
func Open(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Mode != sim.ModeFull {
		return nil, fmt.Errorf("serve: scenario mode must be full (the archive serves real chains)")
	}
	if sc.Storage.Backend != db.BackendDisk {
		return nil, fmt.Errorf("serve: reopening an archive requires the %q storage backend, not %q", db.BackendDisk, sc.Storage.Backend)
	}
	ethCfg, etcCfg := sim.ChainConfigs(sc)
	open := func(ccfg *chain.Config, name string) (*sim.FullLedger, error) {
		scfg := sc.Storage
		scfg.DataDir = sim.ChainDataDir(scfg.DataDir, name)
		kv, err := db.Open(scfg)
		if err != nil {
			return nil, fmt.Errorf("serve: opening %s store: %w", name, err)
		}
		led, err := sim.OpenFullLedger(ccfg, sc, name, kv)
		if err != nil {
			return nil, fmt.Errorf("serve: reopening %s chain: %w", name, err)
		}
		return led, nil
	}
	eth, err := open(ethCfg, "ETH")
	if err != nil {
		return nil, err
	}
	etc, err := open(etcCfg, "ETC")
	if err != nil {
		return nil, err
	}
	srv := rpc.NewServer(cfg)
	beEth := rpc.NewBackend("ETH", eth.BC)
	beEtc := rpc.NewBackend("ETC", etc.BC)
	beEth.SetPeer(beEtc)
	beEtc.SetPeer(beEth)
	srv.RegisterChain(beEth)
	srv.RegisterChain(beEtc)
	return &Result{Server: srv, ETH: eth, ETC: etc}, nil
}

// OpenOrBuild reopens a persisted archive when the scenario's disk data
// directory already holds one, and otherwise builds it by running the
// simulation (which, on the disk backend, persists it for the next
// restart). Non-disk scenarios always build.
func OpenOrBuild(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Storage.Backend != db.BackendDisk {
		return Build(sc, cfg)
	}
	res, err := Open(sc, cfg)
	if err == nil {
		return res, nil
	}
	if !errors.Is(err, chain.ErrNoChain) {
		return nil, err
	}
	return Build(sc, cfg)
}
