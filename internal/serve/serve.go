// Package serve boots the JSON-RPC archive over a simulated partition
// set: it runs a full-fidelity scenario to materialise every chain, then
// mounts them all on one rpc.Server — the single-process stand-in for
// the paper's paired full nodes. cmd/forkserve and cmd/forkload's
// self-serve mode share this path. With the disk storage backend the
// archive is restartable: Open remounts chains persisted by an earlier
// Build without re-simulating, and OpenOrBuild picks automatically.
package serve

import (
	"errors"
	"fmt"
	"io"

	"forkwatch/internal/chain"
	"forkwatch/internal/db"
	_ "forkwatch/internal/db/diskdb" // register the disk backend with db.Open
	"forkwatch/internal/export"
	"forkwatch/internal/live"
	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
)

// ServedChain is one mounted partition: its name and the live ledger
// behind its route.
type ServedChain struct {
	Name   string
	Ledger *sim.FullLedger
}

// Result is a booted archive: the server (caller owns Close) and the
// live chains behind it, in partition order.
type Result struct {
	Server *rpc.Server
	Chains []ServedChain
	Engine *sim.Engine
	// Live is the measurement plane behind the fork_live*/subscription
	// methods and /<route>/stream transports (every boot path attaches
	// one; it feeds from the engine, an archive replay, or — on the
	// replica tier — the follow loops).
	Live *live.Plane
}

// Ledger returns the named chain's ledger, or nil.
func (r *Result) Ledger(name string) *sim.FullLedger {
	for _, c := range r.Chains {
		if c.Name == name {
			return c.Ledger
		}
	}
	return nil
}

// Close shuts the archive down gracefully: drain the RPC server (stop
// accepting, finish in-flight), stop the worker pool, then close every
// chain's store so the disk backend flushes and fsyncs its segments —
// the shutdown path never dies mid-commit.
func (r *Result) Close() {
	r.Server.Drain()
	if r.Live != nil {
		// Wake long-poll waiters and close push channels so no follower
		// blocks on a feed that will never publish again.
		r.Live.Feed.Close()
	}
	r.Server.Close()
	for _, c := range r.Chains {
		if err := closeKV(c.Ledger.BC.DB()); err != nil {
			// The WAL already made the store crash-consistent; a failed
			// flush costs recovery time on reopen, not data.
			fmt.Printf("serve: closing %s store: %v\n", c.Name, err)
		}
	}
}

// closeKV walks a store's wrapper chain (retry, fault injection, cache)
// to the first layer that can close, and closes it.
func closeKV(kv db.KV) error {
	for kv != nil {
		if c, ok := kv.(io.Closer); ok {
			return c.Close()
		}
		switch w := kv.(type) {
		case interface{ Inner() db.KV }:
			kv = w.Inner()
		case interface{ Backend() db.KV }:
			kv = w.Backend()
		default:
			return nil
		}
	}
	return nil
}

// mount registers every chain on a new server, cross-linking all ordered
// backend pairs for the fork_* joins, and routes each at its lowercase
// name.
func mount(cfg rpc.ServerConfig, chains []ServedChain) (*rpc.Server, []*rpc.Backend) {
	srv := rpc.NewServer(cfg)
	backends := make([]*rpc.Backend, len(chains))
	for i, c := range chains {
		backends[i] = rpc.NewBackend(c.Name, c.Ledger.BC)
	}
	for i, b := range backends {
		for j, p := range backends {
			if i != j {
				b.AddPeer(p)
			}
		}
		srv.RegisterChain(b)
	}
	return srv, backends
}

// newPlane builds the live measurement plane on the server's registry
// and attaches it to every route. All routes share one plane: the feed
// carries every partition's events (newHeads filters per route), and
// the snapshot covers the whole partition set, like the batch analyzer.
func newPlane(srv *rpc.Server, backends []*rpc.Backend, epoch uint64) *live.Plane {
	plane := live.NewPlane(epoch, live.Options{}, srv.Registry())
	src := &rpc.LiveSource{
		Feed:     plane.Feed,
		Snapshot: func() any { return plane.Analyzer.Snapshot() },
	}
	for _, b := range backends {
		b.SetLive(src)
	}
	return plane
}

// Build runs sc (which must be ModeFull — the archive needs real blocks
// and tries) and mounts every resulting chain on a new server built from
// cfg. The returned server routes each partition at its lowercase name,
// all cross-linked as peers for the fork_* joins. The live plane is
// attached and already complete: Build serves after the run finishes.
func Build(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	res, run, err := BuildLive(sc, cfg)
	if err != nil {
		return nil, err
	}
	if err := run(); err != nil {
		res.Close()
		return nil, err
	}
	return res, nil
}

// BuildLive mounts sc's chains at genesis and returns the archive plus
// a run function that executes the simulation with the live measurement
// plane attached as an engine observer. Callers serve WHILE run()
// simulates — subscribers watch the partition unfold in real time —
// and run() publishes the feed's EOF marker when the scenario ends.
// (Concurrent serving is safe: the Blockchain's locks already carry the
// replica tier's concurrent read-under-import load.)
func BuildLive(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, func() error, error) {
	if sc.Mode != sim.ModeFull {
		return nil, nil, fmt.Errorf("serve: scenario mode must be full (the archive serves real chains)")
	}
	eng, err := sim.New(sc)
	if err != nil {
		return nil, nil, fmt.Errorf("serve: building engine: %w", err)
	}
	names := eng.PartitionNames()
	chains := make([]ServedChain, len(names))
	for i, name := range names {
		led, ok := eng.LedgerAt(i).(*sim.FullLedger)
		if !ok {
			return nil, nil, fmt.Errorf("serve: %s ledger is %T, want *sim.FullLedger", name, eng.LedgerAt(i))
		}
		chains[i] = ServedChain{Name: name, Ledger: led}
	}
	srv, backends := mount(cfg, chains)
	plane := newPlane(srv, backends, sc.Epoch)
	eng.AddObserver(plane)
	res := &Result{Server: srv, Chains: chains, Engine: eng, Live: plane}
	run := func() error {
		if err := eng.Run(); err != nil {
			return fmt.Errorf("serve: running scenario: %w", err)
		}
		plane.Complete()
		return nil
	}
	return res, run, nil
}

// Open remounts an archive that an earlier Build persisted through the
// disk backend: every chain is reopened from sc.Storage.DataDir (each
// chain lives in its own subdirectory) via chain.Open — WAL redo, no
// re-simulation — and served exactly as Build would serve them. The
// scenario must use the disk backend and full mode; it is otherwise only
// consulted for the chain configs and the data directory, so the restart
// serves whatever the directory durably holds. Result.Engine is nil: no
// simulation ran.
//
// A directory holding no chain fails with chain.ErrNoChain (wrapped);
// OpenOrBuild uses that to fall back to a fresh Build.
func Open(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Mode != sim.ModeFull {
		return nil, fmt.Errorf("serve: scenario mode must be full (the archive serves real chains)")
	}
	if sc.Storage.Backend != db.BackendDisk {
		return nil, fmt.Errorf("serve: reopening an archive requires the %q storage backend, not %q", db.BackendDisk, sc.Storage.Backend)
	}
	cfgs := sim.PartitionChainConfigs(sc)
	specs := sc.PartitionSpecs()
	chains := make([]ServedChain, len(specs))
	for i, sp := range specs {
		scfg := sc.Storage
		scfg.DataDir = sim.ChainDataDir(scfg.DataDir, sp.Name)
		kv, err := db.Open(scfg)
		if err != nil {
			return nil, fmt.Errorf("serve: opening %s store: %w", sp.Name, err)
		}
		led, err := sim.OpenFullLedger(cfgs[i], sc, sp.Name, kv)
		if err != nil {
			return nil, fmt.Errorf("serve: reopening %s chain: %w", sp.Name, err)
		}
		chains[i] = ServedChain{Name: sp.Name, Ledger: led}
	}
	srv, backends := mount(cfg, chains)
	plane := newPlane(srv, backends, sc.Epoch)
	// Rebuild the live observables by replaying the persisted chains in
	// global time order (the same reconstruction the batch analyzer
	// uses). Day-table economics are not persisted in the chain stores,
	// so a reopened archive's plane has no day rows or hashes-per-USD —
	// blocks, windows, echoes and pool shares are all restored. Echo
	// TOTALS are conserved but per-chain attribution can differ from the
	// original run's: the engine delivers a day's events in partition
	// order while this replay interleaves by timestamp, so which chain
	// "saw the tx first" may flip for same-day pairs. The run ended
	// before the restart, so the feed completes immediately: followers
	// replay the ring and see EOF.
	var blocks []export.BlockRow
	var txs []export.TxRow
	for _, c := range chains {
		b, t := export.FromBlockchain(c.Name, c.Ledger.BC)
		blocks = append(blocks, b...)
		txs = append(txs, t...)
	}
	export.Replay(blocks, txs, sc.Epoch, sc.DayLength, plane)
	plane.Complete()
	return &Result{Server: srv, Chains: chains, Live: plane}, nil
}

// OpenOrBuild reopens a persisted archive when the scenario's disk data
// directory already holds one, and otherwise builds it by running the
// simulation (which, on the disk backend, persists it for the next
// restart). Non-disk scenarios always build.
func OpenOrBuild(sc *sim.Scenario, cfg rpc.ServerConfig) (*Result, error) {
	if sc.Storage.Backend != db.BackendDisk {
		return Build(sc, cfg)
	}
	res, err := Open(sc, cfg)
	if err == nil {
		return res, nil
	}
	if !errors.Is(err, chain.ErrNoChain) {
		return nil, err
	}
	return Build(sc, cfg)
}
