package serve

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"forkwatch/internal/db"
	"forkwatch/internal/db/faultkv"
	"forkwatch/internal/faultnet"
	"forkwatch/internal/metrics"
	"forkwatch/internal/p2p"
	"forkwatch/internal/rpc"
	"forkwatch/internal/sim"
)

// replicaScenario is smallScenario on the in-memory backend: the replica
// chaos run rebuilds stores from the wire, so persistence is not the
// property under test and mem keeps the -race run fast.
func replicaScenario() *sim.Scenario {
	sc := sim.NewScenario(7, 1)
	sc.Mode = sim.ModeFull
	sc.DayLength = 3600
	sc.Users = 40
	sc.ETHTxPerDay = 30
	sc.ETCTxPerDay = 12
	return sc
}

// chaosTuneP2P shrinks the p2p resilience knobs for scaled-down chaos:
// short enough to retry fast under 20% loss, lenient enough that the
// injected faults never demote or ban the only primary.
func chaosTuneP2P(c *p2p.Config) {
	c.HandshakeTimeout = 500 * time.Millisecond
	c.ReadTimeout = 2 * time.Second
	c.WriteTimeout = 400 * time.Millisecond
	c.SyncTimeout = 200 * time.Millisecond
	c.DialBackoff = 25 * time.Millisecond
	c.MaxDialBackoff = 250 * time.Millisecond
	c.DialMaxFails = -1
	c.DemoteScore = 5000
	c.BanScore = 10000
	c.BanWindow = time.Second
}

// swappableHandler lets a "process" restart behind a stable URL: the
// failover client keeps its endpoint while the replica behind it is
// crashed and replaced.
type swappableHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swappableHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swappableHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	h.ServeHTTP(w, r)
}

// faultyReplicaKV builds a ReplicaConfig.WrapKV that layers injected
// storage faults under a bounded retry, returning the fault handles so
// the test can keep injection off while the store bootstraps.
func faultyReplicaKV(seed int64) (func(string, db.KV) db.KV, *[]*faultkv.KV) {
	var mu sync.Mutex
	handles := &[]*faultkv.KV{}
	wrap := func(chainName string, kv db.KV) db.KV {
		fkv := faultkv.Wrap(kv, faultkv.Faults{
			Seed:        seed + int64(len(chainName)),
			ReadErrRate: 0.01,
			StallEvery:  4000,
			Stall:       5 * time.Millisecond,
		})
		fkv.SetEnabled(false)
		mu.Lock()
		*handles = append(*handles, fkv)
		mu.Unlock()
		// The retry absorbs most injected transients; the ones that leak
		// through surface as typed -32010 errors and feed the breaker.
		return db.NewRetry(fkv, 4)
	}
	return wrap, handles
}

// waitReplicaCaughtUp polls until every chain of r matches the primary's
// heads exactly.
func waitReplicaCaughtUp(t *testing.T, what string, r *Replica, primary *Result) {
	t.Helper()
	deadline := time.Now().Add(90 * time.Second)
	for time.Now().Before(deadline) {
		caught := true
		for _, pc := range primary.Chains {
			rl := r.Ledger(pc.Name)
			if rl == nil || rl.BC.Head().Hash() != pc.Ledger.BC.Head().Hash() {
				caught = false
				break
			}
		}
		if caught {
			return
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, pc := range primary.Chains {
		if rl := r.Ledger(pc.Name); rl != nil {
			t.Logf("%s: %s at %d, primary at %d", what, pc.Name,
				rl.BC.Head().Number(), pc.Ledger.BC.Head().Number())
		}
	}
	t.Fatalf("%s: replica never caught up with the primary", what)
}

// chaosReplicaStats is the artifact the chaos run writes for CI
// ($CHAOS_REPLICA_OUT).
type chaosReplicaStats struct {
	Requests     int               `json:"requests"`
	Successes    int               `json:"successes"`
	SuccessRate  float64           `json:"success_rate"`
	WrongAnswers int               `json:"wrong_answers"`
	Failovers    uint64            `json:"failovers"`
	Hedged       uint64            `json:"hedged"`
	ByClass      map[string]uint64 `json:"by_class"`
}

// TestChaosReplicaServingPlane is the replica-tier acceptance test: a
// primary and two replicas syncing over a 20%-loss faultnet transport
// with injected storage faults, the client's preferred replica crashed
// and restarted mid-run, a failover client hammering the pair
// throughout. Every successful response must be byte-identical to the
// primary's answer for the same request — degraded or not, the tier
// never returns a wrong result — and the success rate must clear the
// floor.
func TestChaosReplicaServingPlane(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity build plus chaos convergence")
	}
	sc := replicaScenario()
	primary, err := Build(sc, rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	defer primary.Close()

	// The wire: MemNet under faultnet — 20% frame loss plus jitter on
	// every p2p connection in both directions.
	mem := p2p.NewMemNet()
	fnet := faultnet.New(mem, faultnet.Faults{
		Seed:     42,
		Latency:  time.Millisecond,
		Jitter:   5 * time.Millisecond,
		DropRate: 0.20,
	})
	base := Transport{Listen: mem.Listen, Dialer: mem}
	primaryAddrs := make([]string, len(primary.Chains))
	for i, c := range primary.Chains {
		primaryAddrs[i] = "primary-" + c.Name
	}
	psrv, err := ServePrimary(primary, PrimaryConfig{
		Addrs:     primaryAddrs,
		Transport: FaultyTransport(base, fnet, "primary"),
		TuneP2P:   chaosTuneP2P,
	})
	if err != nil {
		t.Fatalf("ServePrimary: %v", err)
	}
	defer psrv.Close()

	// shared survives replica1's crash/restart: both of its incarnations
	// and the failover client count into it, so the /debug/metrics
	// assertions below see the whole run.
	shared := metrics.NewRegistry()
	mkReplica := func(name string, faultSeed int64, reg *metrics.Registry) (*Replica, *[]*faultkv.KV) {
		wrap, handles := faultyReplicaKV(faultSeed)
		r, err := NewReplica(sc, ReplicaConfig{
			Name:           name,
			PrimaryAddrs:   primaryAddrs,
			Transport:      FaultyTransport(base, fnet, name),
			StalenessBound: 4,
			PollInterval:   20 * time.Millisecond,
			WrapKV:         wrap,
			TuneP2P:        chaosTuneP2P,
		}, rpc.ServerConfig{Registry: reg})
		if err != nil {
			t.Fatalf("NewReplica(%s): %v", name, err)
		}
		return r, handles
	}
	enable := func(handles *[]*faultkv.KV) {
		for _, h := range *handles {
			h.SetEnabled(true)
		}
	}

	r1, f1 := mkReplica("replica1", 100, shared)
	defer func() { r1.Close() }()
	r2, f2 := mkReplica("replica2", 200, nil)
	defer r2.Close()

	// Initial convergence happens with storage faults off (the interesting
	// fault window is the serving run, and sync-time injection only
	// changes how long this wait takes); the wire faults are always on.
	waitReplicaCaughtUp(t, "initial sync r1", r1, primary)
	waitReplicaCaughtUp(t, "initial sync r2", r2, primary)
	enable(f1)
	enable(f2)

	h1 := &swappableHandler{h: r1.Server}
	ts1 := httptest.NewServer(h1)
	defer ts1.Close()
	ts2 := httptest.NewServer(r2.Server)
	defer ts2.Close()

	fc, err := rpc.NewFailoverClient(rpc.FailoverConfig{
		Endpoints:      []string{ts1.URL + "/eth", ts2.URL + "/eth"},
		HTTPClient:     &http.Client{Timeout: 3 * time.Second},
		HedgeDelay:     150 * time.Millisecond,
		HealthInterval: 25 * time.Millisecond,
		Registry:       shared,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()

	// The request mix: read-path methods with concrete params at explicit
	// heights, so the primary's answer for the identical body is the
	// ground truth a correct replica must reproduce byte for byte.
	ethHead := primary.Ledger("ETH").BC.Head().Number()
	rng := rand.New(rand.NewSource(7))
	nextBody := func(id int) string {
		h := 1 + rng.Uint64()%ethHead
		switch id % 3 {
		case 0:
			return fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"eth_getBlockByNumber","params":["0x%x", true]}`, id, h)
		case 1:
			return fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"fork_difficultyWindow","params":["0x1", "0x%x"]}`, id, h)
		default:
			return fmt.Sprintf(`{"jsonrpc":"2.0","id":%d,"method":"fork_poolShares","params":["0x1", "0x%x"]}`, id, h)
		}
	}
	type tagged struct {
		Result    json.RawMessage `json:"result"`
		Error     *rpc.Error      `json:"error"`
		Staleness *uint64         `json:"staleness"`
	}

	const total = 400
	successes, wrong := 0, 0
	for i := 0; i < total; i++ {
		switch i {
		case total / 4:
			// Crash the client's preferred replica mid-run: its server
			// drains, its stores close; the endpoint answers 503 until the
			// restart below, so the client must fail over to replica2.
			r1.Close()
		case total / 2:
			// Restart it under the same name: fresh mem stores, full resync
			// from the primary over the same faulty wire, same registry.
			r1, f1 = mkReplica("replica1", 101, shared)
			enable(f1)
			h1.set(r1.Server)
		}
		body := nextBody(i)
		raw, out := fc.Do([]byte(body))
		if out.Class != rpc.ClassOK && out.Class != rpc.ClassDegraded {
			continue // shed/unavailable: allowed, counted against the floor
		}
		successes++
		var got tagged
		if err := json.Unmarshal(raw, &got); err != nil || got.Error != nil || len(got.Result) == 0 {
			wrong++
			t.Errorf("request %d: success class %q with unusable body %s", i, out.Class, raw)
			continue
		}
		want := post(t, primary.Server, "/eth", body)
		var wantResp tagged
		if err := json.Unmarshal(want, &wantResp); err != nil || wantResp.Error != nil {
			t.Fatalf("request %d: primary refused the ground-truth request: %s", i, want)
		}
		if string(got.Result) != string(wantResp.Result) {
			wrong++
			t.Errorf("request %d (%s): replica result diverges from primary\n got: %s\nwant: %s",
				i, body, got.Result, wantResp.Result)
		}
		if (out.Class == rpc.ClassDegraded) != (got.Staleness != nil) {
			t.Errorf("request %d: class %q but staleness tag present=%v", i, out.Class, got.Staleness != nil)
		}
	}

	stats := fc.Stats()
	rate := float64(successes) / float64(total)
	t.Logf("chaos replica run: %d/%d ok (%.1f%%), %d wrong, failovers=%d hedged=%d byClass=%v",
		successes, total, 100*rate, wrong, stats.Failovers, stats.Hedged, stats.ByClass)
	if wrong != 0 {
		t.Fatalf("%d wrong answers; the tier must never return one", wrong)
	}
	if rate < 0.90 {
		t.Fatalf("success rate %.2f below the 0.90 floor", rate)
	}
	if stats.Failovers == 0 {
		t.Error("the crash window produced no failovers; the client never switched endpoints")
	}

	// The restarted replica reconverges to the primary's exact heads.
	waitReplicaCaughtUp(t, "resync after restart", r1, primary)

	// Satellite: the replica metrics surface. The per-replica gauges and
	// the failover counters must all be present in the /debug/metrics
	// snapshot, and the crash window must have moved rpc.failovers.
	snap := shared.Snapshot()
	for _, key := range []string{"sync.lag_blocks", "sync.eth.lag_blocks", "serve.degraded", "rpc.failovers", "rpc.hedged"} {
		if _, ok := snap[key]; !ok {
			t.Errorf("metrics snapshot is missing %q", key)
		}
	}
	if v, ok := snap["rpc.failovers"].(uint64); !ok || v == 0 {
		t.Errorf("rpc.failovers = %v, want the crash window's failovers counted", snap["rpc.failovers"])
	}

	if out := os.Getenv("CHAOS_REPLICA_OUT"); out != "" {
		artifact, _ := json.MarshalIndent(chaosReplicaStats{
			Requests:     total,
			Successes:    successes,
			SuccessRate:  rate,
			WrongAnswers: wrong,
			Failovers:    stats.Failovers,
			Hedged:       stats.Hedged,
			ByClass:      stats.ByClass,
		}, "", "  ")
		if err := os.WriteFile(out, append(artifact, '\n'), 0o644); err != nil {
			t.Errorf("writing %s: %v", out, err)
		}
	}
}

// TestChaosReplicaDegradedSelfReport: a replica whose primary is
// unreachable must say so — /readyz 503, every response tagged with a
// staleness field, the serve.degraded gauge raised — instead of lying
// with clean answers from a stale (here: genesis-only) head.
func TestChaosReplicaDegradedSelfReport(t *testing.T) {
	sc := replicaScenario()
	mem := p2p.NewMemNet()
	r, err := NewReplica(sc, ReplicaConfig{
		Name:            "orphan",
		PrimaryAddrs:    []string{"nowhere-ETH", "nowhere-ETC"},
		Transport:       Transport{Listen: mem.Listen, Dialer: mem},
		StalenessBound:  4,
		PollInterval:    10 * time.Millisecond,
		BreakerCooldown: 50 * time.Millisecond,
		TuneP2P:         chaosTuneP2P,
	}, rpc.ServerConfig{})
	if err != nil {
		t.Fatalf("NewReplica: %v", err)
	}
	defer r.Close()

	// Readiness: degraded on every route, 503 on the wire.
	rd := r.Server.CheckReadiness()
	if rd.Ready {
		t.Fatal("a replica that never saw its primary reported ready")
	}
	for route, h := range rd.Routes {
		if !h.Degraded {
			t.Errorf("route %s not degraded with an unreachable primary", route)
		}
	}
	req := httptest.NewRequest(http.MethodGet, "/readyz", nil)
	rec := httptest.NewRecorder()
	r.Server.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz = %d, want 503", rec.Code)
	}

	// Serving: answers still flow (the genesis head is real data) but
	// every one carries the staleness tag.
	raw := post(t, r.Server, "/eth", `{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}`)
	var resp struct {
		Result    json.RawMessage `json:"result"`
		Staleness *uint64         `json:"staleness"`
	}
	if err := json.Unmarshal(raw, &resp); err != nil {
		t.Fatal(err)
	}
	if string(resp.Result) != `"0x0"` {
		t.Fatalf("orphan replica head = %s, want the genesis height", resp.Result)
	}
	if resp.Staleness == nil {
		t.Fatalf("degraded response carries no staleness tag: %s", raw)
	}

	if v, ok := r.Server.Registry().Snapshot()["serve.degraded"].(float64); !ok || v != 1 {
		t.Errorf("serve.degraded gauge = %v, want 1", v)
	}

	// The reconnect loop is paced — p2p's dial backoff plus the sync
	// breaker — instead of hammering the dead address on every tick.
	time.Sleep(400 * time.Millisecond)
	dials, _ := r.Server.Registry().Snapshot()["sync.eth.dials"].(uint64)
	if ticks := uint64(400 / 10); dials == 0 || dials >= ticks {
		t.Errorf("%d dial attempts in 400ms of 10ms ticks; the reconnect loop is not paced", dials)
	}
}
