package pow

import (
	"math"
	"math/big"
	"math/rand"
	"testing"

	"forkwatch/internal/chain"
)

func TestSealVerify(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	h := &chain.Header{Number: 7, Time: 1234, Difficulty: big.NewInt(99999)}
	Seal(h, r)
	if err := Verify(h); err != nil {
		t.Fatalf("freshly sealed header invalid: %v", err)
	}
	h.Time++ // tamper: seal no longer commits
	if err := Verify(h); err == nil {
		t.Error("tampered header should fail seal verification")
	}
}

func TestSealDeterministic(t *testing.T) {
	h1 := &chain.Header{Number: 1, Difficulty: big.NewInt(5)}
	h2 := &chain.Header{Number: 1, Difficulty: big.NewInt(5)}
	Seal(h1, rand.New(rand.NewSource(42)))
	Seal(h2, rand.New(rand.NewSource(42)))
	if h1.Nonce != h2.Nonce || h1.MixDigest != h2.MixDigest {
		t.Error("same seed should produce the same seal")
	}
}

// TestBlockIntervalMean checks the sampler realises the exponential mean
// difficulty/hashrate (the relationship all Fig 1 dynamics derive from).
func TestBlockIntervalMean(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(7)))
	diff := big.NewInt(14_000_000) // with 1e6 H/s → mean 14s
	const n = 20_000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(s.BlockInterval(diff, 1e6))
	}
	mean := sum / n
	if math.Abs(mean-14) > 0.5 {
		t.Errorf("empirical mean interval = %.2f, want ~14", mean)
	}
}

func TestBlockIntervalFloorsAtOneSecond(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(1)))
	for i := 0; i < 1000; i++ {
		if got := s.BlockInterval(big.NewInt(1), 1e9); got < 1 {
			t.Fatalf("interval %d below 1s floor", got)
		}
	}
}

func TestWinnerIndexProportional(t *testing.T) {
	s := NewSampler(rand.New(rand.NewSource(3)))
	weights := []float64{10, 30, 60}
	counts := make([]int, 3)
	const n = 30_000
	for i := 0; i < n; i++ {
		counts[s.WinnerIndex(weights)]++
	}
	for i, want := range []float64{0.10, 0.30, 0.60} {
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.02 {
			t.Errorf("winner %d frequency = %.3f, want ~%.2f", i, got, want)
		}
	}
	if s.WinnerIndex([]float64{0, 0}) != -1 {
		t.Error("zero total weight should return -1")
	}
}

func TestMeanAndEquilibrium(t *testing.T) {
	d := big.NewInt(1_400_000)
	if got := Mean(d, 100_000); math.Abs(got-14) > 1e-9 {
		t.Errorf("Mean = %v, want 14", got)
	}
	if !math.IsInf(Mean(d, 0), 1) {
		t.Error("zero hashrate should mean infinite interval")
	}
	hr := EquilibriumHashrate(d, 14)
	if math.Abs(hr-100_000) > 1e-6 {
		t.Errorf("EquilibriumHashrate = %v, want 100000", hr)
	}
}
