// Package pow simulates Ethereum's proof-of-work sealing.
//
// Substitution note (DESIGN.md §2): real Ethash requires a multi-GiB DAG
// and GPU-scale hashing; none of the paper's measurements depend on the
// hash function itself, only on the *rate* at which a network of miners
// finds blocks. Mining is a memoryless lottery, so block inter-arrival
// times are exponential with mean difficulty/hashrate; the Sampler draws
// from exactly that distribution with a seeded RNG. The seal itself is a
// binding commitment (MixDigest = keccak256(sealHash || nonce)) that
// validators check, preserving header integrity on the wire without
// requiring real work.
package pow

import (
	"encoding/binary"
	"errors"
	"math"
	"math/big"
	"math/rand"

	"forkwatch/internal/chain"
	"forkwatch/internal/keccak"
	"forkwatch/internal/prng"
	"forkwatch/internal/types"
)

// ErrInvalidSeal reports a header whose seal does not commit to its
// contents.
var ErrInvalidSeal = errors.New("pow: invalid seal")

// Seal stamps the header with a nonce and the binding mix digest. The
// nonce is drawn from r so identical simulation seeds produce identical
// chains.
func Seal(h *chain.Header, r *rand.Rand) {
	h.Nonce = r.Uint64()
	h.MixDigest = mixDigest(h.SealHash(), h.Nonce)
}

// Verify checks that the header's mix digest commits to its seal hash and
// nonce.
func Verify(h *chain.Header) error {
	if h.MixDigest != mixDigest(h.SealHash(), h.Nonce) {
		return ErrInvalidSeal
	}
	return nil
}

func mixDigest(sealHash types.Hash, nonce uint64) types.Hash {
	var buf [40]byte
	copy(buf[:32], sealHash.Bytes())
	binary.BigEndian.PutUint64(buf[32:], nonce)
	sum := keccak.Sum256(buf[:])
	return types.BytesToHash(sum[:])
}

// Sampler draws block intervals for a mining population.
//
// A Sampler owns its RNG exclusively and is not safe for concurrent use;
// when two partitions are stepped on separate goroutines each needs its
// own sampler over its own derived stream (NewPartitionSampler).
type Sampler struct {
	r *rand.Rand
}

// NewSampler returns a sampler over the given RNG.
func NewSampler(r *rand.Rand) *Sampler { return &Sampler{r: r} }

// NewPartitionSampler returns a sampler whose stream is derived from the
// scenario seed and the partition name (prng.Derive). The two partitions
// draw from disjoint deterministic streams, so they can be stepped on
// separate goroutines between day barriers while the overall run stays
// bit-for-bit reproducible.
func NewPartitionSampler(seed int64, partition string) *Sampler {
	return &Sampler{r: prng.New(seed, "pow", partition)}
}

// BlockInterval draws the time (in seconds, >= 1) until the next block for
// a network hashing at `hashrate` H/s against `difficulty`: an exponential
// with mean difficulty/hashrate.
func (s *Sampler) BlockInterval(difficulty *big.Int, hashrate float64) uint64 {
	return s.BlockIntervalFloat(types.BigToFloat64(difficulty), hashrate)
}

// BlockIntervalFloat is BlockInterval with the difficulty already reduced
// to a float64 (types.BigToFloat64). The draw and rounding are identical —
// one ExpFloat64 per call — so a caller that caches the float view of its
// head difficulty produces byte-identical chains while skipping a big.Int
// copy per block.
func (s *Sampler) BlockIntervalFloat(difficulty, hashrate float64) uint64 {
	mean := MeanFloat(difficulty, hashrate)
	draw := s.r.ExpFloat64() * mean
	if draw < 1 {
		return 1
	}
	if draw > math.MaxInt64 {
		return math.MaxInt64
	}
	return uint64(draw)
}

// WinnerIndex picks which miner found the block, proportionally to the
// weights (hashrates). Zero total weight returns -1.
func (s *Sampler) WinnerIndex(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	return s.WinnerIndexTotal(weights, total)
}

// WinnerIndexTotal is WinnerIndex with the weight sum precomputed by the
// caller (it must be the left-to-right sum of weights, or the draw's
// scaling — and therefore determinism — breaks). The engine sums each
// day's pool weights once instead of once per block.
func (s *Sampler) WinnerIndexTotal(weights []float64, total float64) int {
	if total <= 0 {
		return -1
	}
	x := s.r.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}

// Mean returns the expected block interval in seconds for the given
// difficulty and hashrate.
func Mean(difficulty *big.Int, hashrate float64) float64 {
	return MeanFloat(types.BigToFloat64(difficulty), hashrate)
}

// MeanFloat is Mean over an already-reduced difficulty.
func MeanFloat(difficulty, hashrate float64) float64 {
	if hashrate <= 0 {
		return math.Inf(1)
	}
	return difficulty / hashrate
}

// EquilibriumHashrate returns the hashrate that would produce the target
// block time at the given difficulty — useful for calibrating scenarios.
func EquilibriumHashrate(difficulty *big.Int, targetSeconds float64) float64 {
	d := types.BigToFloat64(difficulty)
	return d / targetSeconds
}
