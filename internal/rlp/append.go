// Append-style encoding primitives. The Value tree in rlp.go is the
// auditable, composable model; these helpers are the allocation-free fast
// path used by hot encoders (transaction signature payloads and hashes,
// headers, receipts, trie nodes). Each Append* writes the complete RLP
// item — prefix included — onto dst, and each *Size reports exactly the
// bytes the matching Append* will write, so callers can precompute list
// payload lengths and serialize a whole structure into one buffer.
package rlp

import (
	"math/big"
	mathbits "math/bits"
	"sync"
)

// UintSize returns the encoded length of AppendUint(u).
func UintSize(u uint64) int {
	if u < 0x80 {
		return 1 // empty string (u==0) or the byte itself
	}
	return 1 + (mathbits.Len64(u)+7)/8
}

// AppendUint appends the canonical RLP encoding of u (minimal big-endian
// byte string; zero is the empty string).
func AppendUint(dst []byte, u uint64) []byte {
	switch {
	case u == 0:
		return append(dst, 0x80)
	case u < 0x80:
		return append(dst, byte(u))
	default:
		n := (mathbits.Len64(u) + 7) / 8
		dst = append(dst, 0x80+byte(n))
		for i := n - 1; i >= 0; i-- {
			dst = append(dst, byte(u>>(8*uint(i))))
		}
		return dst
	}
}

// BytesSize returns the encoded length of AppendBytes(s).
func BytesSize(s []byte) int {
	if len(s) == 1 && s[0] < 0x80 {
		return 1
	}
	return headSize(len(s)) + len(s)
}

// AppendBytes appends the RLP encoding of the byte string s.
func AppendBytes(dst, s []byte) []byte { return appendString(dst, s) }

// BigIntSize returns the encoded length of AppendBigInt(v).
func BigIntSize(v *big.Int) int {
	if v == nil || v.Sign() == 0 {
		return 1
	}
	n := (v.BitLen() + 7) / 8
	if n == 1 && v.Bits()[0] < 0x80 {
		return 1
	}
	return headSize(n) + n
}

// AppendBigInt appends the canonical RLP encoding of a non-negative big
// integer without materializing v.Bytes(): the minimal big-endian bytes
// are emitted straight from the word representation.
func AppendBigInt(dst []byte, v *big.Int) []byte {
	if v == nil || v.Sign() == 0 {
		return append(dst, 0x80)
	}
	if v.Sign() < 0 {
		panic("rlp: cannot encode negative big.Int")
	}
	const wordBytes = mathbits.UintSize / 8
	words := v.Bits()
	n := (v.BitLen() + 7) / 8
	if n == 1 {
		b := byte(words[0])
		if b < 0x80 {
			return append(dst, b)
		}
		return append(dst, 0x81, b)
	}
	dst = appendLength(dst, 0x80, n)
	for i := n - 1; i >= 0; i-- {
		dst = append(dst, byte(words[i/wordBytes]>>(8*uint(i%wordBytes))))
	}
	return dst
}

// headSize is the length of the prefix for a string or list payload of the
// given length (excluding the single-byte string special case, which
// BytesSize handles).
func headSize(payload int) int {
	if payload <= 55 {
		return 1
	}
	n := 1
	for l := payload >> 8; l > 0; l >>= 8 {
		n++
	}
	return 1 + n
}

// ListSize returns the total encoded length of a list whose element
// encodings sum to payload bytes.
func ListSize(payload int) int { return headSize(payload) + payload }

// AppendListHeader appends the list prefix for a payload of the given
// length; the caller then appends exactly payload bytes of encoded items.
func AppendListHeader(dst []byte, payload int) []byte {
	return appendLength(dst, 0xc0, payload)
}

// StringSize returns the total encoded length (prefix + payload) of a byte
// string of the given payload length in the general header form. The
// single-byte special case (one byte < 0x80 encodes as itself) is the
// caller's to detect; use BytesSize when the bytes are at hand.
func StringSize(payload int) int { return headSize(payload) + payload }

// AppendStringHeader appends the string prefix for a payload of the given
// length; the caller then appends exactly payload bytes. Must not be used
// for the single-byte special case.
func AppendStringHeader(dst []byte, payload int) []byte {
	return appendLength(dst, 0x80, payload)
}

// bufPool recycles encode buffers for transient encode-then-hash uses.
var bufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 512)
		return &b
	},
}

// GetBuf returns a pooled encode buffer with length 0. Release it with
// PutBuf once the encoded bytes are no longer referenced (e.g. after
// hashing); never retain a slice of it past PutBuf.
func GetBuf() *[]byte {
	return bufPool.Get().(*[]byte)
}

// PutBuf returns a buffer obtained from GetBuf to the pool. Callers should
// store the (possibly re-grown) slice back through the pointer first so
// capacity growth is kept.
func PutBuf(b *[]byte) {
	*b = (*b)[:0]
	bufPool.Put(b)
}
