package rlp

import (
	"bytes"
	"encoding/hex"
	"math/big"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// Canonical vectors from the Ethereum wiki / yellow paper appendix B.
var encodeVectors = []struct {
	name string
	in   Value
	out  string
}{
	{"empty string", String(""), "80"},
	{"single low byte", Bytes([]byte{0x00}), "00"},
	{"single byte 0x7f", Bytes([]byte{0x7f}), "7f"},
	{"single byte 0x80", Bytes([]byte{0x80}), "8180"},
	{"dog", String("dog"), "83646f67"},
	{"cat dog list", List(String("cat"), String("dog")), "c88363617483646f67"},
	{"empty list", List(), "c0"},
	{"integer 0", Uint(0), "80"},
	{"integer 15", Uint(15), "0f"},
	{"integer 1024", Uint(1024), "820400"},
	{"nested empty lists", List(List(), List(List()), List(List(), List(List()))),
		"c7c0c1c0c3c0c1c0"},
	{"lorem 56 bytes", String("Lorem ipsum dolor sit amet, consectetur adipisicing elit"),
		"b8384c6f72656d20697073756d20646f6c6f722073697420616d65742c20636f6e7365637465747572206164697069736963696e6720656c6974"},
}

func TestEncodeVectors(t *testing.T) {
	for _, tc := range encodeVectors {
		got := hex.EncodeToString(Encode(tc.in))
		if got != tc.out {
			t.Errorf("%s: encoded %s, want %s", tc.name, got, tc.out)
		}
	}
}

func TestDecodeVectors(t *testing.T) {
	for _, tc := range encodeVectors {
		raw, _ := hex.DecodeString(tc.out)
		v, err := Decode(raw)
		if err != nil {
			t.Errorf("%s: decode error: %v", tc.name, err)
			continue
		}
		if !valueEqual(v, tc.in) {
			t.Errorf("%s: decoded %+v, want %+v", tc.name, v, tc.in)
		}
	}
}

// valueEqual compares two Values structurally, treating nil and empty
// byte slices / item slices as equal.
func valueEqual(a, b Value) bool {
	if a.IsList != b.IsList {
		return false
	}
	if !a.IsList {
		return bytes.Equal(a.Str, b.Str)
	}
	if len(a.Items) != len(b.Items) {
		return false
	}
	for i := range a.Items {
		if !valueEqual(a.Items[i], b.Items[i]) {
			return false
		}
	}
	return true
}

func TestUintRoundTrip(t *testing.T) {
	for _, u := range []uint64{0, 1, 127, 128, 255, 256, 1024, 1 << 32, ^uint64(0)} {
		v, err := Decode(Encode(Uint(u)))
		if err != nil {
			t.Fatalf("decode(%d): %v", u, err)
		}
		got, err := v.AsUint()
		if err != nil || got != u {
			t.Errorf("round trip %d -> %d (%v)", u, got, err)
		}
	}
}

func TestBigIntRoundTrip(t *testing.T) {
	cases := []*big.Int{
		big.NewInt(0), big.NewInt(1), big.NewInt(1 << 40),
		new(big.Int).Lsh(big.NewInt(1), 200),
	}
	for _, want := range cases {
		v, err := Decode(Encode(BigInt(want)))
		if err != nil {
			t.Fatalf("decode(%v): %v", want, err)
		}
		got, err := v.AsBigInt()
		if err != nil || got.Cmp(want) != 0 {
			t.Errorf("round trip %v -> %v (%v)", want, got, err)
		}
	}
}

func TestBigIntNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for negative big.Int")
		}
	}()
	BigInt(big.NewInt(-1))
}

func TestBoolRoundTrip(t *testing.T) {
	for _, b := range []bool{true, false} {
		v, err := Decode(Encode(Bool(b)))
		if err != nil {
			t.Fatal(err)
		}
		got, err := v.AsBool()
		if err != nil || got != b {
			t.Errorf("bool %v -> %v (%v)", b, got, err)
		}
	}
	if _, err := Bytes([]byte{2}).AsBool(); err == nil {
		t.Error("2 should not decode as bool")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty input", ""},
		{"truncated short string", "83aa"},
		{"truncated long string", "b840aabb"},
		{"truncated list", "c83363617483646f"},
		{"non-minimal single byte", "8101"},
		{"long form for short payload", "b801ff"},
		{"leading zero in long length", "b90001" + "ff"},
		{"trailing bytes", "80ff"},
	}
	for _, tc := range cases {
		raw, err := hex.DecodeString(tc.in)
		if err != nil {
			t.Fatalf("%s: bad test hex: %v", tc.name, err)
		}
		if _, err := Decode(raw); err == nil {
			t.Errorf("%s: expected decode error", tc.name)
		}
	}
}

func TestAccessorTypeErrors(t *testing.T) {
	list := List(Uint(1))
	if _, err := list.AsBytes(); err == nil {
		t.Error("AsBytes on list should error")
	}
	if _, err := list.AsUint(); err == nil {
		t.Error("AsUint on list should error")
	}
	str := String("x")
	if _, err := str.AsList(); err == nil {
		t.Error("AsList on string should error")
	}
	if _, err := list.ListOf(2); err == nil {
		t.Error("ListOf with wrong arity should error")
	}
	if items, err := list.ListOf(1); err != nil || len(items) != 1 {
		t.Errorf("ListOf(1) = %v, %v", items, err)
	}
}

func TestAsUintCanonical(t *testing.T) {
	// 0x820001 is the string {0x00, 0x01}: valid RLP string, but not a
	// canonical integer.
	raw, _ := hex.DecodeString("820001")
	v, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.AsUint(); err == nil {
		t.Error("leading-zero integer should be rejected")
	}
	if _, err := v.AsBigInt(); err == nil {
		t.Error("leading-zero big integer should be rejected")
	}
	// Nine bytes does not fit uint64.
	big9 := Bytes(bytes.Repeat([]byte{0xff}, 9))
	if _, err := big9.AsUint(); err == nil {
		t.Error("9-byte integer should overflow uint64")
	}
}

// randomValue generates a random Value of bounded depth for property tests.
func randomValue(r *rand.Rand, depth int) Value {
	if depth <= 0 || r.Intn(2) == 0 {
		n := r.Intn(70)
		b := make([]byte, n)
		r.Read(b)
		return Bytes(b)
	}
	n := r.Intn(5)
	items := make([]Value, n)
	for i := range items {
		items[i] = randomValue(r, depth-1)
	}
	return List(items...)
}

// Property: Decode is a left inverse of Encode for arbitrary nested values.
func TestQuickRoundTrip(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		v := randomValue(r, 4)
		enc := Encode(v)
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode of freshly encoded value failed: %v (%x)", err, enc)
		}
		if !valueEqual(v, dec) {
			t.Fatalf("round trip mismatch: %+v -> %x -> %+v", v, enc, dec)
		}
	}
}

// Property: encoding is injective on byte strings (different strings,
// different encodings).
func TestQuickInjective(t *testing.T) {
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return !bytes.Equal(Encode(Bytes(a)), Encode(Bytes(b)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Uint and BigInt agree for all uint64 values.
func TestQuickUintBigIntAgree(t *testing.T) {
	f := func(u uint64) bool {
		return reflect.DeepEqual(Encode(Uint(u)), Encode(BigInt(new(big.Int).SetUint64(u))))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodeHeaderSizedList(b *testing.B) {
	v := List(
		Bytes(make([]byte, 32)), Bytes(make([]byte, 32)), Bytes(make([]byte, 20)),
		Bytes(make([]byte, 32)), Bytes(make([]byte, 32)), BigInt(big.NewInt(1<<40)),
		Uint(4_000_000), Uint(21_000), Uint(1_469_020_840), Bytes(make([]byte, 32)),
	)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Encode(v)
	}
}

func BenchmarkDecodeHeaderSizedList(b *testing.B) {
	enc := Encode(List(
		Bytes(make([]byte, 32)), Bytes(make([]byte, 32)), Bytes(make([]byte, 20)),
		Bytes(make([]byte, 32)), Bytes(make([]byte, 32)), BigInt(big.NewInt(1<<40)),
		Uint(4_000_000), Uint(21_000), Uint(1_469_020_840), Bytes(make([]byte, 32)),
	))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
