// Package rlp implements Recursive Length Prefix encoding, Ethereum's
// canonical serialization for blocks, transactions and wire messages.
//
// RLP has exactly two kinds of items: byte strings and lists of items. The
// package models this directly with the Value type rather than reflection:
// every forkwatch structure encodes itself explicitly, which keeps the
// encoding auditable against the Ethereum yellow-paper rules (appendix B)
// and keeps decode errors local and typed.
//
// Hash identity of transactions — which the paper's echo analysis joins
// on — is the Keccak-256 of this encoding, so the rules here must match
// Ethereum's exactly. The package enforces canonical form on decode
// (minimal length prefixes, no leading zeroes in integers), as real nodes
// do when validating gossip.
package rlp

import (
	"errors"
	"fmt"
	"math/big"
)

// Encoding errors.
var (
	// ErrTruncated reports input that ends before the announced length.
	ErrTruncated = errors.New("rlp: input truncated")
	// ErrCanonical reports a non-minimal or otherwise non-canonical encoding.
	ErrCanonical = errors.New("rlp: non-canonical encoding")
	// ErrType reports an accessor applied to the wrong kind of item.
	ErrType = errors.New("rlp: type mismatch")
	// ErrUintRange reports an integer that does not fit in 64 bits.
	ErrUintRange = errors.New("rlp: integer out of uint64 range")
	// ErrTrailing reports trailing bytes after a complete top-level item.
	ErrTrailing = errors.New("rlp: trailing bytes after value")
)

// Value is a decoded or to-be-encoded RLP item: a byte string when IsList
// is false, a list of sub-items when true.
type Value struct {
	// IsList distinguishes lists from byte strings.
	IsList bool
	// Str holds the payload of a byte-string item.
	Str []byte
	// Items holds the elements of a list item.
	Items []Value
}

// Bytes wraps a byte string as a Value. The slice is not copied.
func Bytes(b []byte) Value { return Value{Str: b} }

// String wraps a Go string as a Value.
func String(s string) Value { return Value{Str: []byte(s)} }

// Uint encodes u in big-endian with no leading zeroes, per the RLP rule
// that integers are minimal byte strings (zero encodes as the empty
// string).
func Uint(u uint64) Value {
	if u == 0 {
		return Value{Str: []byte{}}
	}
	var buf [8]byte
	n := 0
	for i := 7; i >= 0; i-- {
		buf[7-i] = byte(u >> (8 * uint(i)))
	}
	for n < 8 && buf[n] == 0 {
		n++
	}
	return Value{Str: append([]byte(nil), buf[n:]...)}
}

// BigInt encodes a non-negative big integer as a minimal byte string.
// Negative values panic: RLP has no signed representation and a negative
// quantity reaching the codec is a programming error.
func BigInt(v *big.Int) Value {
	if v == nil {
		return Value{Str: []byte{}}
	}
	if v.Sign() < 0 {
		panic("rlp: cannot encode negative big.Int")
	}
	if v.Sign() == 0 {
		return Value{Str: []byte{}}
	}
	return Value{Str: v.Bytes()}
}

// List wraps items as a list Value.
func List(items ...Value) Value { return Value{IsList: true, Items: items} }

// Bool encodes a boolean as 0 or 1 per Ethereum convention.
func Bool(b bool) Value {
	if b {
		return Uint(1)
	}
	return Uint(0)
}

// AsBytes returns the payload of a byte-string item.
func (v Value) AsBytes() ([]byte, error) {
	if v.IsList {
		return nil, fmt.Errorf("%w: expected bytes, have list", ErrType)
	}
	return v.Str, nil
}

// AsUint decodes the item as a canonical big-endian unsigned integer.
func (v Value) AsUint() (uint64, error) {
	b, err := v.AsBytes()
	if err != nil {
		return 0, err
	}
	if len(b) > 8 {
		return 0, fmt.Errorf("%w: %d bytes", ErrUintRange, len(b))
	}
	if len(b) > 0 && b[0] == 0 {
		return 0, fmt.Errorf("%w: leading zero in integer", ErrCanonical)
	}
	var u uint64
	for _, c := range b {
		u = u<<8 | uint64(c)
	}
	return u, nil
}

// AsBigInt decodes the item as a canonical non-negative big integer.
func (v Value) AsBigInt() (*big.Int, error) {
	b, err := v.AsBytes()
	if err != nil {
		return nil, err
	}
	if len(b) > 0 && b[0] == 0 {
		return nil, fmt.Errorf("%w: leading zero in integer", ErrCanonical)
	}
	return new(big.Int).SetBytes(b), nil
}

// AsBool decodes the item as a boolean (0 or 1).
func (v Value) AsBool() (bool, error) {
	u, err := v.AsUint()
	if err != nil {
		return false, err
	}
	if u > 1 {
		return false, fmt.Errorf("%w: boolean out of range: %d", ErrCanonical, u)
	}
	return u == 1, nil
}

// AsList returns the elements of a list item.
func (v Value) AsList() ([]Value, error) {
	if !v.IsList {
		return nil, fmt.Errorf("%w: expected list, have bytes", ErrType)
	}
	return v.Items, nil
}

// ListOf returns the elements of a list item and checks its arity.
func (v Value) ListOf(n int) ([]Value, error) {
	items, err := v.AsList()
	if err != nil {
		return nil, err
	}
	if len(items) != n {
		return nil, fmt.Errorf("%w: list of %d items, want %d", ErrType, len(items), n)
	}
	return items, nil
}

// Encode serializes v per the RLP rules. The output is built in a single
// exact-size buffer: sizes are precomputed recursively, so nested lists do
// not allocate intermediate payload slices.
func Encode(v Value) []byte {
	return appendValue(make([]byte, 0, Size(v)), v)
}

// EncodeList is shorthand for Encode(List(items...)).
func EncodeList(items ...Value) []byte {
	v := Value{IsList: true, Items: items}
	return appendValue(make([]byte, 0, Size(v)), v)
}

// Size returns the exact encoded length of v in bytes.
func Size(v Value) int {
	if !v.IsList {
		return BytesSize(v.Str)
	}
	payload := 0
	for _, item := range v.Items {
		payload += Size(item)
	}
	return headSize(payload) + payload
}

func appendValue(dst []byte, v Value) []byte {
	if !v.IsList {
		return appendString(dst, v.Str)
	}
	payload := 0
	for _, item := range v.Items {
		payload += Size(item)
	}
	dst = appendLength(dst, 0xc0, payload)
	for _, item := range v.Items {
		dst = appendValue(dst, item)
	}
	return dst
}

func appendString(dst, s []byte) []byte {
	if len(s) == 1 && s[0] < 0x80 {
		return append(dst, s[0])
	}
	dst = appendLength(dst, 0x80, len(s))
	return append(dst, s...)
}

// appendLength writes the RLP length prefix: base+len for short payloads,
// base+55+len(len) followed by the big-endian length for long ones.
func appendLength(dst []byte, base byte, length int) []byte {
	if length <= 55 {
		return append(dst, base+byte(length))
	}
	var lenBuf [8]byte
	n := 0
	for i := 7; i >= 0; i-- {
		lenBuf[7-i] = byte(uint64(length) >> (8 * uint(i)))
	}
	for n < 8 && lenBuf[n] == 0 {
		n++
	}
	dst = append(dst, base+55+byte(8-n))
	return append(dst, lenBuf[n:]...)
}

// Decode parses exactly one top-level item from data and rejects trailing
// bytes. Use DecodePrefix for streaming.
func Decode(data []byte) (Value, error) {
	v, rest, err := DecodePrefix(data)
	if err != nil {
		return Value{}, err
	}
	if len(rest) != 0 {
		return Value{}, fmt.Errorf("%w: %d bytes", ErrTrailing, len(rest))
	}
	return v, nil
}

// DecodePrefix parses one item from the front of data and returns the
// remainder. Decoded byte strings alias the input buffer.
func DecodePrefix(data []byte) (Value, []byte, error) {
	if len(data) == 0 {
		return Value{}, nil, fmt.Errorf("%w: empty input", ErrTruncated)
	}
	tag := data[0]
	switch {
	case tag < 0x80: // single byte, its own encoding
		return Value{Str: data[:1]}, data[1:], nil

	case tag <= 0xb7: // short string
		length := int(tag - 0x80)
		if len(data)-1 < length {
			return Value{}, nil, fmt.Errorf("%w: string of %d bytes", ErrTruncated, length)
		}
		s := data[1 : 1+length]
		if length == 1 && s[0] < 0x80 {
			return Value{}, nil, fmt.Errorf("%w: single byte below 0x80 must encode itself", ErrCanonical)
		}
		return Value{Str: s}, data[1+length:], nil

	case tag <= 0xbf: // long string
		length, rest, err := decodeLongLength(data, tag-0xb7)
		if err != nil {
			return Value{}, nil, err
		}
		if len(rest) < length {
			return Value{}, nil, fmt.Errorf("%w: string of %d bytes", ErrTruncated, length)
		}
		return Value{Str: rest[:length]}, rest[length:], nil

	case tag <= 0xf7: // short list
		length := int(tag - 0xc0)
		if len(data)-1 < length {
			return Value{}, nil, fmt.Errorf("%w: list of %d bytes", ErrTruncated, length)
		}
		items, err := decodeListPayload(data[1 : 1+length])
		if err != nil {
			return Value{}, nil, err
		}
		return Value{IsList: true, Items: items}, data[1+length:], nil

	default: // long list
		length, rest, err := decodeLongLength(data, tag-0xf7)
		if err != nil {
			return Value{}, nil, err
		}
		if len(rest) < length {
			return Value{}, nil, fmt.Errorf("%w: list of %d bytes", ErrTruncated, length)
		}
		items, err := decodeListPayload(rest[:length])
		if err != nil {
			return Value{}, nil, err
		}
		return Value{IsList: true, Items: items}, rest[length:], nil
	}
}

// decodeLongLength reads an n-byte big-endian length following the tag and
// enforces canonical form: no leading zero, and the value must exceed 55.
func decodeLongLength(data []byte, n byte) (int, []byte, error) {
	if int(n) > len(data)-1 {
		return 0, nil, fmt.Errorf("%w: length field of %d bytes", ErrTruncated, n)
	}
	lenBytes := data[1 : 1+n]
	if lenBytes[0] == 0 {
		return 0, nil, fmt.Errorf("%w: leading zero in length", ErrCanonical)
	}
	if n > 8 {
		return 0, nil, fmt.Errorf("%w: length field of %d bytes", ErrCanonical, n)
	}
	var length uint64
	for _, c := range lenBytes {
		length = length<<8 | uint64(c)
	}
	if length <= 55 {
		return 0, nil, fmt.Errorf("%w: long form used for short payload", ErrCanonical)
	}
	if length > uint64(int(^uint(0)>>1)) {
		return 0, nil, fmt.Errorf("%w: length %d overflows int", ErrCanonical, length)
	}
	return int(length), data[1+n:], nil
}

func decodeListPayload(payload []byte) ([]Value, error) {
	var items []Value
	for len(payload) > 0 {
		item, rest, err := DecodePrefix(payload)
		if err != nil {
			return nil, err
		}
		items = append(items, item)
		payload = rest
	}
	return items, nil
}
