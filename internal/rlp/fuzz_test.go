package rlp

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic,
// and anything that decodes must re-encode to exactly the same bytes
// (canonical form means decode∘encode is the identity on valid input).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add([]byte{0xc0})
	f.Add([]byte{0x83, 'd', 'o', 'g'})
	f.Add([]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'})
	f.Add([]byte{0xb8, 0x38})
	f.Add([]byte{0xf8, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(v)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not identity: %x -> %x", data, re)
		}
	})
}
