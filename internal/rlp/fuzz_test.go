package rlp

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic,
// and anything that decodes must re-encode to exactly the same bytes
// (canonical form means decode∘encode is the identity on valid input).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{0x80})
	f.Add([]byte{0xc0})
	f.Add([]byte{0x83, 'd', 'o', 'g'})
	f.Add([]byte{0xc8, 0x83, 'c', 'a', 't', 0x83, 'd', 'o', 'g'})
	f.Add([]byte{0xb8, 0x38})
	f.Add([]byte{0xf8, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, err := Decode(data)
		if err != nil {
			return
		}
		re := Encode(v)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not identity: %x -> %x", data, re)
		}
	})
}

// FuzzDecodePrefix exercises the streaming entry point: it must never
// panic, a successful decode must consume a prefix that re-encodes to
// itself, and the typed accessors must return errors — not panic — on
// whatever shape comes back.
func FuzzDecodePrefix(f *testing.F) {
	f.Add([]byte{0x80, 0x01})
	f.Add([]byte{0xc0, 0xc0})
	f.Add([]byte{0x83, 'd', 'o', 'g', 0xff})
	f.Add([]byte{0xf8, 0x01, 0x00})
	f.Add([]byte{0xb8, 0x38, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		v, rest, err := DecodePrefix(data)
		if err != nil {
			return
		}
		if len(rest) > len(data) {
			t.Fatalf("rest longer than input: %d > %d", len(rest), len(data))
		}
		consumed := data[:len(data)-len(rest)]
		if re := Encode(v); !bytes.Equal(re, consumed) {
			t.Fatalf("prefix not canonical: consumed %x, re-encoded %x", consumed, re)
		}
		// Accessors must never panic, whatever the decoded shape.
		v.AsBytes()
		v.AsUint()
		v.AsBigInt()
		v.AsBool()
		v.AsList()
		v.ListOf(3)
	})
}

// FuzzEncodeRoundTrip drives the encoder with structured inputs: any
// Value we can build must encode to bytes that decode back to an equal
// Value. Nesting depth is derived from the input so lists get covered.
func FuzzEncodeRoundTrip(f *testing.F) {
	f.Add([]byte("dog"), uint64(0), 0)
	f.Add([]byte{}, uint64(1), 2)
	f.Add([]byte{0x80, 0xc0}, uint64(1<<40), 5)
	f.Fuzz(func(t *testing.T, blob []byte, n uint64, depth int) {
		v := List(Bytes(blob), Uint(n))
		for i := 0; i < depth%8; i++ {
			v = List(v, Uint(uint64(i)))
		}
		enc := Encode(v)
		back, err := Decode(enc)
		if err != nil {
			t.Fatalf("round trip decode failed: %v (enc %x)", err, enc)
		}
		if re := Encode(back); !bytes.Equal(re, enc) {
			t.Fatalf("round trip not stable: %x -> %x", enc, re)
		}
	})
}
