package forkwatch_test

import (
	"bytes"
	"runtime"
	"testing"

	"forkwatch"
	"forkwatch/internal/analysis"
)

// runFigures runs the scenario and renders every figure CSV.
func runFigures(t *testing.T, sc *forkwatch.Scenario) map[string][]byte {
	t.Helper()
	rep, err := forkwatch.Run(sc)
	if err != nil {
		t.Fatalf("run (parallelism %d): %v", sc.Parallelism, err)
	}
	return renderFigures(t, rep)
}

// compareFigures asserts two figure sets are byte-identical.
func compareFigures(t *testing.T, label string, want, got map[string][]byte) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: figure count %d, want %d", label, len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s: %s missing", label, name)
			continue
		}
		if !bytes.Equal(g, w) {
			t.Errorf("%s: %s differs (%d vs %d bytes)", label, name, len(w), len(g))
		}
	}
}

// TestParallelFiguresByteIdentical is the tentpole acceptance test: the
// engine must produce byte-identical figure CSVs whether the two
// partitions are stepped serially (Parallelism 1), on two goroutines, or
// at whatever GOMAXPROCS resolves to. Every stochastic component draws
// from its own seed-derived stream and cross-chain effects happen at the
// day barrier in fixed order, so scheduling must never leak into output.
func TestParallelFiguresByteIdentical(t *testing.T) {
	days := 40
	if testing.Short() {
		days = 12
	}
	mk := func(par int) *forkwatch.Scenario {
		sc := forkwatch.NewScenario(3, days)
		sc.Parallelism = par
		return sc
	}

	serial := runFigures(t, mk(1))
	compareFigures(t, "parallelism 2", serial, runFigures(t, mk(2)))
	if gmp := runtime.GOMAXPROCS(0); gmp != 2 {
		compareFigures(t, "parallelism GOMAXPROCS", serial, runFigures(t, mk(0)))
	}
}

// TestParallelFullModeByteIdentical pins the full-fidelity substrate too:
// real blocks, EVM execution, PoW seals — serial vs concurrent stepping
// must agree byte for byte, including the ledger heads.
func TestParallelFullModeByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity run")
	}
	mk := func(par int) *forkwatch.Scenario {
		sc := forkwatch.NewScenario(7, 2)
		sc.Mode = forkwatch.ModeFull
		sc.DayLength = 3600
		sc.Users = 40
		sc.ETHTxPerDay = 30
		sc.ETCTxPerDay = 12
		sc.Parallelism = par
		return sc
	}
	compareFigures(t, "full mode", runFigures(t, mk(1)), runFigures(t, mk(2)))
}

// TestParallelChaosFiguresByteIdentical crosses the two hard guarantees:
// 20% injected storage faults plus scheduled mid-commit crashes, stepped
// serially and in parallel, must still render byte-identical figures —
// the parallel mining path recovers through the same WAL machinery.
// (Name carries "Chaos" so `make chaos` picks it up.)
func TestParallelChaosFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity chaos run")
	}
	mk := func(par int) *forkwatch.Scenario {
		sc := forkwatch.NewScenario(5, 2)
		sc.Mode = forkwatch.ModeFull
		sc.DayLength = 3600
		sc.Users = 40
		sc.ETHTxPerDay = 30
		sc.ETCTxPerDay = 12
		sc.Parallelism = par
		sc.StorageFaults = forkwatch.StorageFaults{
			Seed:          99,
			ReadErrRate:   0.20,
			WriteErrRate:  0.20,
			TornBatchRate: 0.002,
		}
		sc.StorageRetryAttempts = 24 // 0.2^24: transient faults never go fatal
		sc.Crashes = []forkwatch.CrashSpec{
			{Chain: "ETH", Day: 0, Block: 4, Op: 3},
			{Chain: "ETH", Day: 1, Block: 2, Op: 40},
			{Chain: "ETC", Day: 1, Block: 0, Op: 1},
		}
		return sc
	}

	run := func(par int) (map[string][]byte, int) {
		sc := mk(par)
		eng, err := forkwatch.NewEngine(sc)
		if err != nil {
			t.Fatalf("engine (parallelism %d): %v", par, err)
		}
		col := analysis.NewCollector(sc.Epoch)
		eng.AddObserver(col)
		if err := eng.Run(); err != nil {
			t.Fatalf("run (parallelism %d): %v", par, err)
		}
		return renderFigures(t, &forkwatch.Report{Scenario: sc, Collector: col}), eng.CrashesFired()
	}

	serial, serialCrashes := run(1)
	parallel, parallelCrashes := run(2)
	if serialCrashes == 0 || parallelCrashes == 0 {
		t.Fatalf("crashes fired: serial %d, parallel %d — chaos run is vacuous", serialCrashes, parallelCrashes)
	}
	compareFigures(t, "chaos parallel", serial, parallel)
}
