# forkwatch build/check entry points.
#
# `make test` is the tier-1 gate (what CI and the roadmap require).
# `make check` is the full pre-merge battery: vet + build + race tests.

GO ?= go

.PHONY: all build test race vet partitionlint matrix check bench benchcmp profile fuzz chaos chaos-disk chaos-replica rpcsmoke live-smoke loadbench clean

all: build

build:
	$(GO) build ./...

# Tier-1: the plain test suite.
test:
	$(GO) test ./...

# Race-enabled run of everything, including the chaos suite.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Partition-registry guard: no non-test core code may hard-wire the
# historical pair through "ETH"/"ETC" string literals (see
# tools/partitionlint for the allowlist).
partitionlint:
	$(GO) run ./tools/partitionlint

check: vet partitionlint build race

# Scenario-matrix smoke: sweep the aligned/conflict/extreme grid crossed
# with the pool behaviour models under the race detector, writing
# matrix.csv (the artifact CI uploads). Short horizon: the sweep is a
# smoke test, not a calibration run.
MATRIX_DIR ?= matrix-out
MATRIX_DAYS ?= 12

matrix:
	mkdir -p $(MATRIX_DIR)
	$(GO) run -race ./cmd/forksim -matrix -days $(MATRIX_DAYS) -out $(MATRIX_DIR)

# Fuzz smoke: `go test -fuzz` takes exactly one target per invocation,
# so each decoder target runs on its own.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/rlp/
	$(GO) test -fuzz '^FuzzDecodePrefix$$' -fuzztime $(FUZZTIME) ./internal/rlp/
	$(GO) test -fuzz '^FuzzEncodeRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/rlp/
	$(GO) test -fuzz '^FuzzDecodeTx$$' -fuzztime $(FUZZTIME) ./internal/chain/
	$(GO) test -fuzz '^FuzzDecodeHeader$$' -fuzztime $(FUZZTIME) ./internal/chain/
	$(GO) test -fuzz '^FuzzDecodeBlock$$' -fuzztime $(FUZZTIME) ./internal/chain/
	$(GO) test -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME) ./internal/rpc/
	$(GO) test -fuzz '^FuzzDecodeRecord$$' -fuzztime $(FUZZTIME) ./internal/db/diskdb/
	$(GO) test -fuzz '^FuzzScanSegment$$' -fuzztime $(FUZZTIME) ./internal/db/diskdb/

# Storage chaos battery under the race detector: fault-injection unit
# tests, WAL crash/recovery sweep and the figure byte-identity test.
chaos:
	$(GO) test -race -run 'Chaos|Crash|WAL|Fault|Torn|Recover|Guard' ./...

# Disk-backend chaos: the exhaustive crash-offset sweep on real segment
# files, the disk figure byte-identity run and the archive restart test,
# all under the race detector (uses the test tempdir for storage).
chaos-disk:
	$(GO) test -race -run 'TestDisk|TestChaosDiskFiguresByteIdentical|TestOpenServes|TestOpenOrBuild' ./internal/chain/ ./internal/serve/ .

# Replica-tier chaos under the race detector: primary + two replicas
# over a 20%-loss faultnet wire with injected storage faults, a replica
# crash/restart mid-run, and a failover client checking every answer
# byte-for-byte against the primary. Failover stats land in
# CHAOS_REPLICA_OUT (the artifact CI uploads).
CHAOS_REPLICA_OUT ?= chaos-replica.json

chaos-replica:
	CHAOS_REPLICA_OUT=$(abspath $(CHAOS_REPLICA_OUT)) $(GO) test -race -v -run 'TestChaosReplica' ./internal/serve/

# Benchmarks: three iterations per benchmark (benchtime=1x was too noisy
# to diff between snapshots; iteration counts land in the JSON), raw text
# kept, converted into a machine-readable JSON snapshot for the PR record.
BENCH_JSON ?= BENCH_pr10.json

bench:
	$(GO) test -bench=. -benchtime=3x -benchmem -run '^$$' ./... | tee bench.out
	$(GO) run ./tools/benchjson bench.out > $(BENCH_JSON)

# Bench diff against a committed baseline snapshot: prints ns/op and
# allocs/op deltas. ns/op gating is opt-in (BENCH_THRESHOLD, wall time is
# noisy on shared runners); allocs/op gating is ON by default — alloc
# counts are deterministic per build, so a regression past
# BENCH_ALLOC_THRESHOLD is a real leak in the pooled-allocation engine,
# and CI fails on it. Set BENCH_ALLOC_THRESHOLD=0 to report only.
BENCH_BASELINE ?= BENCH_pr6.json
BENCH_THRESHOLD ?= 0
BENCH_ALLOC_THRESHOLD ?= 10

benchcmp:
	$(GO) run ./tools/benchcmp -threshold $(BENCH_THRESHOLD) \
		-alloc-threshold $(BENCH_ALLOC_THRESHOLD) $(BENCH_BASELINE) $(BENCH_JSON)

# CPU/alloc profile of the long-horizon engine benchmark; inspect with
# `go tool pprof cpu.pprof` / `go tool pprof -alloc_objects mem.pprof`.
# heap.pprof is an end-of-run live-heap snapshot (inuse_space), the view
# that catches pools pinning memory rather than churning it.
PROFILE_DIR ?= profiles

profile:
	mkdir -p $(PROFILE_DIR)
	$(GO) test -bench '^BenchmarkFigure2LongTermDynamics$$' -benchtime=3x -run '^$$' \
		-cpuprofile $(PROFILE_DIR)/cpu.pprof -memprofile $(PROFILE_DIR)/mem.pprof \
		-memprofilerate 1 .
	$(GO) test -bench '^BenchmarkFullFidelityDay$$' -benchtime=3x -run '^$$' \
		-memprofile $(PROFILE_DIR)/heap.pprof .
	@echo "profiles in $(PROFILE_DIR)/: cpu.pprof mem.pprof heap.pprof"

# RPC smoke: boot forkserve, curl every method on both chain endpoints
# and check /debug/metrics (what CI's rpc-smoke job runs).
rpcsmoke:
	GO="$(GO)" sh scripts/rpcsmoke.sh

# Live measurement plane smoke: boot forkserve -live, follow the event
# feed over RPC with forkanalyze -follow, and require the streamed CSV
# tables byte-identical to a batch forksim export of the same scenario.
# The convergence diff (empty on success) lands in LIVESMOKE_OUT; CI
# uploads it as an artifact.
LIVESMOKE_OUT ?= live-smoke-out

live-smoke:
	GO="$(GO)" LIVESMOKE_OUT="$(LIVESMOKE_OUT)" sh scripts/livesmoke.sh

# Serving-layer load benchmark: closed-loop generator against an
# in-process archive; throughput and latency percentiles land in
# LOAD_JSON for the PR record.
LOAD_JSON ?= BENCH_pr4.json
LOAD_DURATION ?= 5s
LOAD_CLIENTS ?= 64
LOAD_SUBS ?= 8

loadbench:
	$(GO) run ./cmd/forkload -selfserve -days 1 -duration $(LOAD_DURATION) \
		-clients $(LOAD_CLIENTS) -subscribers $(LOAD_SUBS) -out $(LOAD_JSON)

clean:
	$(GO) clean ./...
