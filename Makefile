# forkwatch build/check entry points.
#
# `make test` is the tier-1 gate (what CI and the roadmap require).
# `make check` is the full pre-merge battery: vet + build + race tests.

GO ?= go

.PHONY: all build test race vet check bench fuzz chaos rpcsmoke loadbench clean

all: build

build:
	$(GO) build ./...

# Tier-1: the plain test suite.
test:
	$(GO) test ./...

# Race-enabled run of everything, including the chaos suite.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: vet build race

# Fuzz smoke: `go test -fuzz` takes exactly one target per invocation,
# so each decoder target runs on its own.
FUZZTIME ?= 30s

fuzz:
	$(GO) test -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME) ./internal/rlp/
	$(GO) test -fuzz '^FuzzDecodePrefix$$' -fuzztime $(FUZZTIME) ./internal/rlp/
	$(GO) test -fuzz '^FuzzEncodeRoundTrip$$' -fuzztime $(FUZZTIME) ./internal/rlp/
	$(GO) test -fuzz '^FuzzDecodeTx$$' -fuzztime $(FUZZTIME) ./internal/chain/
	$(GO) test -fuzz '^FuzzDecodeHeader$$' -fuzztime $(FUZZTIME) ./internal/chain/
	$(GO) test -fuzz '^FuzzDecodeBlock$$' -fuzztime $(FUZZTIME) ./internal/chain/
	$(GO) test -fuzz '^FuzzDecodeRequest$$' -fuzztime $(FUZZTIME) ./internal/rpc/

# Storage chaos battery under the race detector: fault-injection unit
# tests, WAL crash/recovery sweep and the figure byte-identity test.
chaos:
	$(GO) test -race -run 'Chaos|Crash|WAL|Fault|Torn|Recover|Guard' ./...

# Benchmarks: run everything once, keep the raw text, and convert it into
# a machine-readable JSON snapshot for the PR record.
BENCH_JSON ?= BENCH_pr2.json

bench:
	$(GO) test -bench=. -benchtime=1x -benchmem -run '^$$' ./... | tee bench.out
	$(GO) run ./tools/benchjson bench.out > $(BENCH_JSON)

# RPC smoke: boot forkserve, curl every method on both chain endpoints
# and check /debug/metrics (what CI's rpc-smoke job runs).
rpcsmoke:
	GO="$(GO)" sh scripts/rpcsmoke.sh

# Serving-layer load benchmark: closed-loop generator against an
# in-process archive; throughput and latency percentiles land in
# LOAD_JSON for the PR record.
LOAD_JSON ?= BENCH_pr4.json
LOAD_DURATION ?= 5s
LOAD_CLIENTS ?= 64

loadbench:
	$(GO) run ./cmd/forkload -selfserve -days 1 -duration $(LOAD_DURATION) \
		-clients $(LOAD_CLIENTS) -out $(LOAD_JSON)

clean:
	$(GO) clean ./...
