// replayecho demonstrates the security vulnerability the paper quantifies
// in Figure 4: after the fork, a transaction broadcast on one chain can be
// rebroadcast ("echoed") verbatim on the other and will execute — the
// message format is identical and the sender's pre-fork funds exist on
// both sides. It then shows the two defences the community deployed:
// splitting funds to chain-specific addresses, and EIP-155 chain ids.
//
// Everything runs on real chains with real transactions.
//
//	go run ./examples/replayecho
package main

import (
	"fmt"
	"log"
	"math/big"

	"forkwatch/internal/chain"
	"forkwatch/internal/types"
)

var (
	victim   = types.HexToAddress("0x71c71b")  // never split their funds
	merchant = types.HexToAddress("0x3e4c4a")  // the intended recipient
	careful  = types.HexToAddress("0xca4ef01") // splits before transacting
	pool     = types.HexToAddress("0x900100")
)

func ether(n int64) *big.Int { return new(big.Int).Mul(big.NewInt(n), chain.Ether) }

func mineOn(bc *chain.Blockchain, txs ...*chain.Transaction) error {
	b, err := bc.BuildBlock(pool, bc.Head().Header.Time+14, txs)
	if err != nil {
		return err
	}
	return bc.InsertBlock(b)
}

func balances(label string, eth, etc *chain.Blockchain, addr types.Address) {
	ethSt, _ := eth.HeadState()
	etcSt, _ := etc.HeadState()
	fmt.Printf("%-28s ETH %8s   ETC %8s\n", label,
		new(big.Int).Div(ethSt.GetBalance(addr), chain.Ether),
		new(big.Int).Div(etcSt.GetBalance(addr), chain.Ether))
}

func main() {
	gen := &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       1_469_020_840,
		Alloc: map[types.Address]*big.Int{
			victim:  ether(100),
			careful: ether(100),
		},
	}
	eth, err := chain.NewBlockchain(chain.ETHConfig(1, nil, types.Address{}), gen)
	if err != nil {
		log.Fatal(err)
	}
	etc, err := eth.NewSibling(chain.ETCConfig(1), gen)
	if err != nil {
		log.Fatal(err)
	}
	// Pass the fork: each chain mines its own block 1.
	if err := mineOn(eth); err != nil {
		log.Fatal(err)
	}
	if err := mineOn(etc); err != nil {
		log.Fatal(err)
	}

	fmt.Println("== The echo: one signature, two chains ==")
	fmt.Println("the victim owned 100 ether before the fork, so they hold 100 ETH *and* 100 ETC")
	balances("victim before:", eth, etc, victim)

	// The victim pays the merchant 30 on ETH only — or so they think.
	pay := chain.NewTransaction(0, &merchant, ether(30), 21_000, big.NewInt(1), nil).Sign(victim, 0)
	if err := mineOn(eth, pay); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvictim pays merchant 30 on ETH (tx %s)\n", pay.Hash())

	// The merchant (or anyone watching gossip) rebroadcasts the *same
	// bytes* on ETC. Same hash, same signature — and it executes.
	echoed, err := chain.DecodeTx(pay.Encode())
	if err != nil {
		log.Fatal(err)
	}
	if err := mineOn(etc, echoed); err != nil {
		log.Fatalf("echo rejected (unexpected): %v", err)
	}
	fmt.Printf("the merchant echoes it into ETC (same hash %s) — it executes\n\n", echoed.Hash())
	balances("victim after the echo:", eth, etc, victim)
	balances("merchant after the echo:", eth, etc, merchant)

	fmt.Println("\n== Defence 1: split your funds first ==")
	// The careful user moves each chain's funds to a chain-specific
	// address before transacting. The ETH split tx CAN still be echoed
	// into ETC, but that only moves the ETC funds to the user's OWN
	// ETH-side address; after the split, payments from the new address
	// cannot be replayed (the address has no funds on the other chain).
	ethOnly := types.HexToAddress("0xca4ef01e4")
	etcOnly := types.HexToAddress("0xca4ef01e7c")
	splitETH := chain.NewTransaction(0, &ethOnly, ether(99), 21_000, big.NewInt(1), nil).Sign(careful, 0)
	splitETC := chain.NewTransaction(0, &etcOnly, ether(99), 21_000, big.NewInt(1), nil).Sign(careful, 0)
	if err := mineOn(eth, splitETH); err != nil {
		log.Fatal(err)
	}
	if err := mineOn(etc, splitETC); err != nil {
		log.Fatal(err)
	}
	payETH := chain.NewTransaction(0, &merchant, ether(10), 21_000, big.NewInt(1), nil).Sign(ethOnly, 0)
	if err := mineOn(eth, payETH); err != nil {
		log.Fatal(err)
	}
	echoAttempt, _ := chain.DecodeTx(payETH.Encode())
	if err := mineOn(etc, echoAttempt); err != nil {
		fmt.Printf("echo of the post-split payment fails on ETC: %v\n", err)
	} else {
		log.Fatal("post-split payment should not be replayable")
	}

	fmt.Println("\n== Defence 2: EIP-155 chain ids ==")
	// Both chains activate replay protection (ETC did so on Jan 13 2017,
	// per the paper). A transaction bound to chain id 1 is rejected by
	// the ETC rule set outright.
	eth.Config().EIP155Block = big.NewInt(0)
	etc.Config().EIP155Block = big.NewInt(0)
	bound := chain.NewTransaction(1, &merchant, ether(5), 21_000, big.NewInt(1), nil).Sign(victim, 1)
	if err := mineOn(eth, bound); err != nil {
		log.Fatal(err)
	}
	boundEcho, _ := chain.DecodeTx(bound.Encode())
	if err := mineOn(etc, boundEcho); err != nil {
		fmt.Printf("echo of a chain-bound tx fails on ETC: %v\n", err)
	} else {
		log.Fatal("chain-bound tx should not be replayable")
	}
	fmt.Println("\nthe paper's Fig 4 measures exactly this traffic at network scale:")
	fmt.Println("run `go run ./cmd/forksim -days 270` for the full time series.")
}
