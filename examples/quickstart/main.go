// Quickstart: run the calibrated ETH/ETC fork scenario for the first month
// after the fork and print the paper's headline observations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"forkwatch"
)

func main() {
	// A Scenario bundles every model knob: hashrate schedule, market
	// coupling, user/attacker behaviour, pool dynamics. Seed 1, 30 days.
	sc := forkwatch.NewScenario(1, 30)

	rep, err := forkwatch.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	// The Report's accessors map one-to-one onto the paper's figures.
	fmt.Print(rep.Summary())
	fmt.Println()

	// The default scenario's partitions are the historical pair: the
	// majority chain first, the minority second.
	maj, min := rep.Chains()[0], rep.Chains()[1]
	blocksPerHour, _, delta := rep.Figure1()
	majBlocks, minBlocks := blocksPerHour.Chain(maj), blocksPerHour.Chain(min)
	minDelta := delta.Chain(min)
	fmt.Println("Figure 1 extract — the partition moment (hours after the fork):")
	fmt.Printf("%6s %14s %14s %14s\n", "hour", maj+" blocks/hr", min+" blocks/hr", min+" delta (s)")
	for _, h := range []int{0, 3, 6, 12, 24, 36, 48, 72, 168} {
		if h >= len(minBlocks) {
			break
		}
		fmt.Printf("%6d %14.0f %14.0f %14.0f\n", h, majBlocks[h], minBlocks[h], minDelta[h])
	}

	rec := rep.RecoveryHours()
	fmt.Printf("\n%s took %d hours (~%.1f days) to sustainably produce blocks at the target rate again;\n",
		min, rec[1], float64(rec[1])/24)
	fmt.Printf("%s was never off it (recovery hour %d). The paper reports \"almost two days\".\n", maj, rec[0])
}
