// Quickstart: run the calibrated ETH/ETC fork scenario for the first month
// after the fork and print the paper's headline observations.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"forkwatch"
)

func main() {
	// A Scenario bundles every model knob: hashrate schedule, market
	// coupling, user/attacker behaviour, pool dynamics. Seed 1, 30 days.
	sc := forkwatch.NewScenario(1, 30)

	rep, err := forkwatch.Run(sc)
	if err != nil {
		log.Fatal(err)
	}

	// The Report's accessors map one-to-one onto the paper's figures.
	fmt.Print(rep.Summary())
	fmt.Println()

	blocksPerHour, _, delta := rep.Figure1()
	fmt.Println("Figure 1 extract — the partition moment (hours after the fork):")
	fmt.Printf("%6s %14s %14s %14s\n", "hour", "ETH blocks/hr", "ETC blocks/hr", "ETC delta (s)")
	for _, h := range []int{0, 3, 6, 12, 24, 36, 48, 72, 168} {
		if h >= len(blocksPerHour.ETC) {
			break
		}
		fmt.Printf("%6d %14.0f %14.0f %14.0f\n", h, blocksPerHour.ETH[h], blocksPerHour.ETC[h], delta.ETC[h])
	}

	ethRec, etcRec := rep.RecoveryHours()
	fmt.Printf("\nETC took %d hours (~%.1f days) to sustainably produce blocks at the target rate again;\n",
		etcRec, float64(etcRec)/24)
	fmt.Printf("ETH was never off it (recovery hour %d). The paper reports \"almost two days\".\n", ethRec)
}
