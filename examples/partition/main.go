// partition demonstrates observation O1 at the network layer: a live p2p
// network of nodes splits the moment the DAO fork activates, because the
// status handshake carries a fork id and nodes on opposite sides refuse
// each other. A crawler then performs the paper's node census, counting
// how many nodes are still reachable in the ETC network.
//
// The nodes are real Servers speaking the framed wire protocol over an
// in-memory transport (cmd/forknode runs the identical stack over TCP),
// degraded by a seeded fault-injection layer — real crawls happened over
// lossy links, so the census here retries through frame drops and jitter.
//
//	go run ./examples/partition
package main

import (
	"errors"
	"fmt"
	"log"
	"math/big"
	"math/rand"
	"time"

	"forkwatch/internal/chain"
	"forkwatch/internal/discover"
	"forkwatch/internal/faultnet"
	"forkwatch/internal/keccak"
	"forkwatch/internal/p2p"
	"forkwatch/internal/pow"
	"forkwatch/internal/types"
)

const (
	totalNodes = 40
	etcNodes   = 4 // 10% keep the classic rules: the paper saw ~90% leave
)

func nodeID(name string) discover.NodeID {
	h := keccak.Sum256([]byte(name))
	return discover.IDFromHash(types.BytesToHash(h[:]))
}

func main() {
	gen := &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       1_469_020_840,
		Alloc: map[types.Address]*big.Int{
			types.HexToAddress("0xa11ce"): new(big.Int).Mul(big.NewInt(100), chain.Ether),
		},
	}
	const forkBlock = 2

	// Build the two post-fork ledgers (shared genesis and block 1).
	eth, err := chain.NewBlockchain(chain.ETHConfig(forkBlock, nil, types.Address{}), gen)
	if err != nil {
		log.Fatal(err)
	}
	etc, err := eth.NewSibling(chain.ETCConfig(forkBlock), gen)
	if err != nil {
		log.Fatal(err)
	}
	shared, err := eth.BuildBlock(types.HexToAddress("0x01"), gen.Time+14, nil)
	if err != nil {
		log.Fatal(err)
	}
	pow.Seal(shared.Header, rand.New(rand.NewSource(1)))
	if err := eth.InsertBlock(shared); err != nil {
		log.Fatal(err)
	}
	if err := etc.InsertBlock(shared); err != nil {
		log.Fatal(err)
	}
	mine := func(bc *chain.Blockchain) {
		b, err := bc.BuildBlock(types.HexToAddress("0x01"), bc.Head().Header.Time+14, nil)
		if err != nil {
			log.Fatal(err)
		}
		pow.Seal(b.Header, rand.New(rand.NewSource(2)))
		if err := bc.InsertBlock(b); err != nil {
			log.Fatal(err)
		}
	}
	mine(eth) // ETH fork block (carries the dao-hard-fork marker)
	mine(etc) // ETC fork block (must not carry it)

	// Spin up the network: 40 nodes, the first etcNodes keep classic
	// rules, the rest upgrade. Every link runs through a seeded fault
	// layer injecting latency, jitter and frame loss.
	mem := p2p.NewMemNet()
	fnet := faultnet.New(mem, faultnet.Faults{
		Seed:     42,
		Latency:  2 * time.Millisecond,
		Jitter:   10 * time.Millisecond,
		DropRate: 0.10,
	})
	var servers []*p2p.Server
	var nodes []discover.Node
	for i := 0; i < totalNodes; i++ {
		name := fmt.Sprintf("node%02d", i)
		bc := eth
		if i < etcNodes {
			bc = etc
		}
		self := discover.Node{ID: nodeID(name), Addr: name}
		ep := fnet.Endpoint(name)
		srv := p2p.NewServer(p2p.Config{
			Self:      self,
			NetworkID: 1,
			MaxPeers:  totalNodes,
			Backend:   p2p.NewChainBackend(bc),
			Dialer:    ep,
			// The wiring below retries failed handshakes immediately;
			// disable the redial backoff so the demo stays snappy.
			DialBackoff: -1,
		})
		ln, err := mem.Listen(name)
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ep.WrapListener(ln))
		defer srv.Close()
		servers = append(servers, srv)
		nodes = append(nodes, self)
	}

	// Every node tries to peer with a handful of others, as the real
	// discovery table would suggest — including nodes across the
	// partition (their table entries are stale from before the fork).
	r := rand.New(rand.NewSource(99))
	attempted, refused := 0, 0
	for i, srv := range servers {
		for j := 0; j < 6; j++ {
			k := r.Intn(totalNodes)
			if k == i {
				continue
			}
			attempted++
			// Lost frames fail handshakes transiently; retry a few times
			// so only real refusals (fork id, duplicates) stick.
			var err error
			for attempt := 0; attempt < 5; attempt++ {
				if err = srv.Connect(nodes[k]); err == nil ||
					errors.Is(err, p2p.ErrForkMismatch) || errors.Is(err, p2p.ErrAlreadyConnected) {
					break
				}
			}
			if err != nil {
				refused++
			}
			// Seed the tables with everyone, reachable or not.
			srv.Table().Add(nodes[k])
		}
	}
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("wired %d nodes: %d dial attempts, %d refused (fork-id/duplicate)\n",
		totalNodes, attempted, refused)

	// The census: crawl as an ETC client from an ETC seed.
	head := etc.Head()
	td, _ := etc.TD(head.Hash())
	probe := &p2p.Probe{
		Self: discover.Node{ID: nodeID("crawler"), Addr: "crawler"},
		Status: p2p.Status{
			NetworkID:  1,
			TD:         td,
			Head:       head.Hash(),
			HeadNumber: head.Number(),
			Genesis:    etc.Genesis().Hash(),
			ForkID:     etc.ForkID(),
		},
		Dialer:  fnet.Endpoint("crawler"),
		Timeout: time.Second,
	}
	// The crawler's own table predates the fork: it knows every node
	// that existed yesterday, and discovers today who still answers. Its
	// link is as lossy as everyone else's, so each probe retries before
	// declaring a node gone — a fork-id refusal is final, a lost frame
	// is not.
	find := probe.FindNodeFunc()
	retrying := func(n discover.Node, target discover.NodeID) ([]discover.Node, error) {
		var res []discover.Node
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			if res, err = find(n, target); err == nil || errors.Is(err, p2p.ErrForkMismatch) {
				return res, err
			}
		}
		return nil, err
	}
	res := discover.Crawl(nodes, retrying, 0)
	fmt.Printf("\ncrawl presenting the ETC fork id:\n")
	fmt.Printf("  reachable ETC nodes:   %d\n", len(res.Reachable))
	fmt.Printf("  advertised but gone:   %d (these upgraded to ETH)\n", len(res.Unreachable))
	lost := float64(len(res.Unreachable)) / float64(len(res.Reachable)+len(res.Unreachable)) * 100
	fmt.Printf("  node loss at the fork: %.0f%%  (the paper reports ~90%%)\n", lost)

	st := fnet.Stats()
	fmt.Printf("\nfault layer: %d frames, %d dropped (%.0f%%), %v injected delay over %d conns\n",
		st.Frames, st.Dropped, float64(st.Dropped)/float64(st.Frames)*100, st.TotalDelay.Round(time.Millisecond), st.Connections)
}
