// poolwars demonstrates the paper's Figure 5 mechanism in isolation: ETH
// inherited the pre-fork pool distribution wholesale, while ETC started
// with a fragmented population of small pools that slowly consolidated —
// under preferential attachment with a size-saturation cap — until its
// top-1/3/5 block shares matched ETH's.
//
//	go run ./examples/poolwars
package main

import (
	"fmt"
	"math/rand"

	"forkwatch/internal/pool"
)

func main() {
	r := rand.New(rand.NewSource(7))

	// ETH: the big pre-fork pools moved over on day one — a Zipf
	// population that stays put.
	ethPools := pool.NewZipfPopulation("eth", 20, 1.0)
	// ETC: the big pools left; 25 small operations remain.
	etcPools := pool.NewUniformPopulation("etc", 25)

	fmt.Println("day   | ETH top1 top3 top5 | ETC top1 top3 top5")
	fmt.Println("------+--------------------+-------------------")
	report := func(day int) {
		fmt.Printf("%5d | %8.2f %4.2f %4.2f | %8.2f %4.2f %4.2f\n", day,
			ethPools.TopNShare(1), ethPools.TopNShare(3), ethPools.TopNShare(5),
			etcPools.TopNShare(1), etcPools.TopNShare(3), etcPools.TopNShare(5))
	}

	const (
		days  = 240
		churn = 0.15 // daily fraction of miners re-homing on ETC
		alpha = 1.3  // preferential-attachment strength
		cap   = 0.24 // attractiveness saturation (miners avoid mega-pools)
	)
	for day := 0; day <= days; day++ {
		if day%30 == 0 {
			report(day)
		}
		// ETH's population is already in its stationary shape.
		etcPools.Consolidate(churn, alpha, cap, r)
	}

	fmt.Println()
	fmt.Println("ETC's concentration converges toward ETH's levels over months —")
	fmt.Println("the paper's observation O6 — without any coordination between miners:")
	fmt.Println("preferential attachment (larger pools pay out more smoothly) balanced")
	fmt.Println("against the documented aversion to pools nearing majority hashrate.")
	fmt.Println()
	fmt.Println("The full simulation attributes every mined block to a pool address and")
	fmt.Println("recomputes these shares from block coinbases, as the paper does:")
	fmt.Println("  go run ./cmd/forksim -days 270")
}
