// daoattack reproduces the event that *caused* the fork the paper
// studies: a DAO-style vault contract with a reentrancy bug, an attacker
// contract that drains it, and the hard fork that erased the theft on one
// chain (ETH) while the other (ETC) kept it — the moment the network
// partitioned.
//
// Everything runs on the real substrate: the contracts are EVM bytecode
// built with the internal assembler, the attack happens through mined
// transactions, and the fork is the consensus-level irregular state
// change.
//
//	go run ./examples/daoattack
package main

import (
	"fmt"
	"log"
	"math/big"

	"forkwatch/internal/chain"
	"forkwatch/internal/evm"
	"forkwatch/internal/types"
)

var (
	deployer = types.HexToAddress("0xdep107e4")
	attacker = types.HexToAddress("0xa77ac4e4")
	victims  = []types.Address{
		types.HexToAddress("0x01"), types.HexToAddress("0x02"),
		types.HexToAddress("0x03"), types.HexToAddress("0x04"),
	}
	pool = types.HexToAddress("0x900100")
)

// vaultRuntime is a DAO-like vault: selector 1 = deposit (credits the
// caller), selector 2 = withdraw (pays out the credit). The bug is the
// order in withdraw: it SENDS FIRST and zeroes the credit AFTER, and the
// send forwards enough gas for the recipient to run code — the exact shape
// of the DAO vulnerability.
func vaultRuntime() []byte {
	a := evm.NewAsm()
	a.Push(0).Op(evm.CALLDATALOAD)
	a.Op(evm.DUP1).Push(1).Op(evm.EQ).JumpI("deposit")
	a.Op(evm.DUP1).Push(2).Op(evm.EQ).JumpI("withdraw")
	a.Op(evm.STOP)

	a.Label("deposit") // [sel]
	a.Op(evm.POP)
	a.Op(evm.CALLER).Op(evm.SLOAD)  // [credit]
	a.Op(evm.CALLVALUE).Op(evm.ADD) // [credit+value]
	a.Op(evm.CALLER).Op(evm.SSTORE)
	a.Op(evm.STOP)

	a.Label("withdraw") // [sel]
	a.Op(evm.POP)
	a.Op(evm.CALLER).Op(evm.SLOAD) // [credit]
	a.Op(evm.DUP1).Op(evm.ISZERO).JumpI("done")
	// CALL(gas=200000, to=caller, value=credit, in=0:0, out=0:0)
	a.Push(0).Push(0).Push(0).Push(0) // [credit, outSize, outOff, inSize, inOff]
	a.Op(evm.DUP1 + 4)                // DUP5: value = credit
	a.Op(evm.CALLER)
	a.Push(200_000)
	a.Op(evm.CALL).Op(evm.POP) // [credit]
	// Zero the credit — but only after the external call above.
	a.Push(0).Op(evm.CALLER).Op(evm.SSTORE)
	a.Op(evm.POP)
	a.Op(evm.STOP)
	a.Label("done")
	a.Op(evm.STOP)
	return a.MustAssemble()
}

// attackerRuntime drains a vault: selector 0xA deposits the call value,
// arms a re-entry counter, and calls withdraw. Every payout from the vault
// lands in the fallback path, which re-enters withdraw while the credit is
// still unzeroed.
func attackerRuntime(vault types.Address) []byte {
	a := evm.NewAsm()
	a.Push(0).Op(evm.CALLDATALOAD)
	a.Op(evm.DUP1).Push(0xA).Op(evm.EQ).JumpI("attack")
	a.Op(evm.POP)
	a.Jump("reenter")

	a.Label("attack") // [sel]
	a.Op(evm.POP)
	// vault.deposit{value: callvalue}()
	a.Push(1).Push(0).Op(evm.MSTORE)
	a.Push(0).Push(0).Push(32).Push(0)
	a.Op(evm.CALLVALUE)
	a.PushAddr(vault)
	a.Push(200_000)
	a.Op(evm.CALL).Op(evm.POP)
	// re-entry budget: 3 extra withdrawals
	a.Push(3).Push(0).Op(evm.SSTORE)
	// vault.withdraw()
	a.Push(2).Push(0).Op(evm.MSTORE)
	a.Push(0).Push(0).Push(32).Push(0).Push(0)
	a.PushAddr(vault)
	a.Push(400_000)
	a.Op(evm.CALL).Op(evm.POP)
	a.Op(evm.STOP)

	a.Label("reenter")
	a.Push(0).Op(evm.SLOAD) // [n]
	a.Op(evm.DUP1).Op(evm.ISZERO).JumpI("halt")
	a.Push(1).Op(evm.SWAP1).Op(evm.SUB) // [n-1]
	a.Push(0).Op(evm.SSTORE)
	a.Push(2).Push(0).Op(evm.MSTORE)
	a.Push(0).Push(0).Push(32).Push(0).Push(0)
	a.PushAddr(vault)
	a.Push(200_000)
	a.Op(evm.CALL).Op(evm.POP)
	a.Op(evm.STOP)
	a.Label("halt")
	a.Op(evm.STOP)
	return a.MustAssemble()
}

// initFor wraps runtime code in init code that returns it (the standard
// deployment shape).
func initFor(runtime []byte) []byte {
	a := evm.NewAsm()
	padded := make([]byte, (len(runtime)+31)/32*32)
	copy(padded, runtime)
	for i := 0; i < len(padded); i += 32 {
		a.PushBytes(padded[i : i+32]).Push(uint64(i)).Op(evm.MSTORE)
	}
	a.Push(uint64(len(runtime))).Push(0).Op(evm.RETURN)
	return a.MustAssemble()
}

func ether(n int64) *big.Int { return new(big.Int).Mul(big.NewInt(n), chain.Ether) }

func inEther(wei *big.Int) string {
	f := new(big.Float).Quo(new(big.Float).SetInt(wei), new(big.Float).SetInt(chain.Ether))
	return f.Text('f', 2)
}

func main() {
	// The vault and attacker addresses are known before deployment
	// (contract addresses derive from creator and nonce), so the ETH
	// fork config can name its drain target up front — just as the real
	// DAO fork enumerated the DAO's addresses.
	vaultAddr := evm.CreateAddress(deployer, 0)
	attackerAddr := evm.CreateAddress(attacker, 0)
	refund := types.HexToAddress("0x4efd")

	gen := &chain.Genesis{
		Difficulty: big.NewInt(131072),
		Time:       1_469_000_000,
		Alloc: map[types.Address]*big.Int{
			deployer: ether(10),
			attacker: ether(20),
		},
	}
	for _, v := range victims {
		gen.Alloc[v] = ether(200)
	}

	const forkBlock = 4
	eth, err := chain.NewBlockchain(chain.ETHConfig(forkBlock, []types.Address{attackerAddr}, refund), gen)
	if err != nil {
		log.Fatal(err)
	}
	etc, err := eth.NewSibling(chain.ETCConfig(forkBlock), gen)
	if err != nil {
		log.Fatal(err)
	}

	mineShared := func(txs ...*chain.Transaction) *chain.Block {
		b, err := eth.BuildBlock(pool, eth.Head().Header.Time+14, txs)
		if err != nil {
			log.Fatal(err)
		}
		if err := eth.InsertBlock(b); err != nil {
			log.Fatal(err)
		}
		if err := etc.InsertBlock(b); err != nil {
			log.Fatal(err)
		}
		return b
	}

	fmt.Println("== Act 1: the DAO era (shared chain) ==")
	// Block 1: deploy both contracts.
	deployVault := chain.NewTransaction(0, nil, nil, 2_000_000, big.NewInt(1), initFor(vaultRuntime())).
		Sign(deployer, 0)
	deployAttacker := chain.NewTransaction(0, nil, nil, 2_000_000, big.NewInt(1), initFor(attackerRuntime(vaultAddr))).
		Sign(attacker, 0)
	mineShared(deployVault, deployAttacker)
	fmt.Printf("deployed vault at %s, attacker at %s\n", vaultAddr, attackerAddr)

	// Block 2: victims deposit 150 ether each.
	var deposits []*chain.Transaction
	selDeposit := make([]byte, 32)
	selDeposit[31] = 1
	for _, v := range victims {
		deposits = append(deposits,
			chain.NewTransaction(0, &vaultAddr, ether(150), 200_000, big.NewInt(1), selDeposit).Sign(v, 0))
	}
	mineShared(deposits...)

	st, _ := eth.HeadState()
	fmt.Printf("vault holds %s ether of user deposits\n", inEther(st.GetBalance(vaultAddr)))

	// Block 3: the attack. Deposit 10 ether, withdraw 4x via reentrancy.
	selAttack := make([]byte, 32)
	selAttack[31] = 0xA
	attackTx := chain.NewTransaction(1, &attackerAddr, ether(10), 2_000_000, big.NewInt(1), selAttack).
		Sign(attacker, 0)
	mineShared(attackTx)

	st, _ = eth.HeadState()
	loot := st.GetBalance(attackerAddr)
	fmt.Printf("after the attack: vault %s ether, attacker contract %s ether (deposited only 10)\n",
		inEther(st.GetBalance(vaultAddr)), inEther(loot))
	if loot.Cmp(ether(11)) <= 0 {
		log.Fatal("reentrancy drain failed — expected the attacker to profit")
	}

	fmt.Println("\n== Act 2: the hard fork (the chains partition) ==")
	// Block 4 is the fork block. Each chain mines its own; they refuse
	// each other's from here on.
	ethFork, err := eth.BuildBlock(pool, eth.Head().Header.Time+14, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := eth.InsertBlock(ethFork); err != nil {
		log.Fatal(err)
	}
	etcFork, err := etc.BuildBlock(pool, etc.Head().Header.Time+14, nil)
	if err != nil {
		log.Fatal(err)
	}
	if err := etc.InsertBlock(etcFork); err != nil {
		log.Fatal(err)
	}
	if err := etc.InsertBlock(ethFork); err != nil {
		fmt.Printf("ETC rejects ETH's fork block: %v\n", err)
	}
	if err := eth.InsertBlock(etcFork); err != nil {
		fmt.Printf("ETH rejects ETC's fork block: %v\n", err)
	}

	ethSt, _ := eth.HeadState()
	etcSt, _ := etc.HeadState()
	fmt.Printf("\nETH (pro-fork):  attacker %s ether, refund contract %s ether\n",
		inEther(ethSt.GetBalance(attackerAddr)), inEther(ethSt.GetBalance(refund)))
	fmt.Printf("ETC (classic):   attacker %s ether, refund contract %s ether\n",
		inEther(etcSt.GetBalance(attackerAddr)), inEther(etcSt.GetBalance(refund)))
	fmt.Printf("\nstate roots: ETH %s\n             ETC %s\n",
		eth.Head().Header.StateRoot, etc.Head().Header.StateRoot)
	fmt.Println("two ledgers, one history, permanently partitioned — the paper's subject.")
}
