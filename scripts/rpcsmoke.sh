#!/bin/sh
# rpcsmoke boots forkserve on a throwaway port, curls every served method
# on both chain endpoints, checks /debug/metrics, and fails on any
# malformed response. It then boots a replica following the primary's
# sync plane, waits for it to catch up, checks that the replica serves
# the same answers plus the replica-tier metrics, and drains it with
# SIGTERM. CI's RPC smoke job runs this; `make rpcsmoke` locally does
# the same.
set -eu

ADDR="${RPCSMOKE_ADDR:-127.0.0.1:18545}"
BASE="http://$ADDR"
RADDR="${RPCSMOKE_REPLICA_ADDR:-127.0.0.1:18546}"
RBASE="http://$RADDR"
P2P="${RPCSMOKE_P2P:-127.0.0.1:18561,127.0.0.1:18562}"
DAYS="${RPCSMOKE_DAYS:-1}"
LOG="$(mktemp)"
RLOG="$(mktemp)"
GO="${GO:-go}"

echo "rpcsmoke: building forkserve..."
$GO build -o /tmp/forkserve ./cmd/forkserve

/tmp/forkserve -days "$DAYS" -addr "$ADDR" -p2p "$P2P" >"$LOG" 2>&1 &
PID=$!
RPID=""
trap 'kill $PID 2>/dev/null || true; [ -n "$RPID" ] && kill $RPID 2>/dev/null || true; rm -f "$LOG" "$RLOG"' EXIT

echo "rpcsmoke: waiting for $BASE/healthz..."
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -gt 120 ]; then
        echo "rpcsmoke: server never came up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 $PID 2>/dev/null; then
        echo "rpcsmoke: server exited early; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done

# call CHAIN METHOD PARAMS — posts one JSON-RPC request and requires a
# non-null "result" member in the response.
call() {
    chain="$1"; method="$2"; params="$3"
    body="{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"$method\",\"params\":$params}"
    resp="$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "$BASE/$chain")" || {
        echo "rpcsmoke: FAIL $chain $method: transport error" >&2; exit 1; }
    case "$resp" in
        *'"error"'*)
            echo "rpcsmoke: FAIL $chain $method: $resp" >&2; exit 1 ;;
        *'"result"'*)
            echo "rpcsmoke: ok   $chain $method" ;;
        *)
            echo "rpcsmoke: FAIL $chain $method: no result member: $resp" >&2; exit 1 ;;
    esac
}

for chain in eth etc; do
    # Head, then a real block hash + tx hash pulled out of block 1 for the
    # lookup methods (block 1 always exists after a 1-day run; tx lookups
    # tolerate a null result on an empty block via the jq-free check).
    call "$chain" eth_blockNumber '[]'
    call "$chain" eth_getBlockByNumber '["0x1",true]'
    call "$chain" eth_getBlockByNumber '["latest",false]'

    hash=$(curl -s -X POST -H 'Content-Type: application/json' \
        -d '{"jsonrpc":"2.0","id":1,"method":"eth_getBlockByNumber","params":["0x1",false]}' \
        "$BASE/$chain" | sed -n 's/.*"hash":"\(0x[0-9a-f]*\)".*/\1/p')
    [ -n "$hash" ] || { echo "rpcsmoke: FAIL $chain: no block hash extracted" >&2; exit 1; }
    call "$chain" eth_getBlockByHash "[\"$hash\",false]"

    miner=$(curl -s -X POST -H 'Content-Type: application/json' \
        -d '{"jsonrpc":"2.0","id":1,"method":"eth_getBlockByNumber","params":["0x1",false]}' \
        "$BASE/$chain" | sed -n 's/.*"miner":"\(0x[0-9a-f]*\)".*/\1/p')
    call "$chain" eth_getBalance "[\"$miner\",\"latest\"]"
    call "$chain" eth_getTransactionCount "[\"$miner\",\"latest\"]"

    txhash=""
    n=1
    while [ -z "$txhash" ] && [ "$n" -le 32 ]; do
        txhash=$(curl -s -X POST -H 'Content-Type: application/json' \
            -d "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"eth_getBlockByNumber\",\"params\":[\"$(printf '0x%x' $n)\",false]}" \
            "$BASE/$chain" | sed -n 's/.*"transactions":\["\(0x[0-9a-f]*\)".*/\1/p')
        n=$((n+1))
    done
    if [ -n "$txhash" ]; then
        call "$chain" eth_getTransactionByHash "[\"$txhash\"]"
        call "$chain" eth_getTransactionReceipt "[\"$txhash\"]"
    else
        echo "rpcsmoke: note $chain blocks 1-32 carry no txs; skipping tx lookups"
    fi

    call "$chain" fork_difficultyWindow '["0x1","0x20"]'
    call "$chain" fork_echoCandidates '["0x1","0x20"]'
    call "$chain" fork_poolShares '["0x1","0x20"]'
done

metrics="$(curl -sf "$BASE/debug/metrics")"
for key in 'rpc.eth.eth_blockNumber.requests' 'rpc.etc.eth_blockNumber.requests' 'storage.eth.reads'; do
    case "$metrics" in
        *"$key"*) ;;
        *) echo "rpcsmoke: FAIL metrics snapshot missing $key" >&2; exit 1 ;;
    esac
done
echo "rpcsmoke: ok   /debug/metrics"

# Subscription phase: the live measurement plane must answer on every
# route — snapshot, subscribe/poll/unsubscribe round-trip (the archive
# is complete, so a cursor-0 subscription replays the whole feed and
# reaches the EOF marker), and the persistent NDJSON stream.
for chain in eth etc; do
    call "$chain" fork_liveSnapshot '[]'
    subresp="$(curl -sf -X POST -H 'Content-Type: application/json' \
        -d '{"jsonrpc":"2.0","id":1,"method":"fork_subscribe","params":["events",0]}' "$BASE/$chain")"
    subid="$(printf '%s' "$subresp" | sed -n 's/.*"subscription":"\(0x[0-9a-f]*\)".*/\1/p')"
    [ -n "$subid" ] || { echo "rpcsmoke: FAIL $chain fork_subscribe: $subresp" >&2; exit 1; }
    seen_eof=""
    n=0
    while [ -z "$seen_eof" ] && [ "$n" -le 30 ]; do
        pollresp="$(curl -sf -X POST -H 'Content-Type: application/json' \
            -d "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"fork_pollSubscription\",\"params\":[\"$subid\",4096]}" \
            "$BASE/$chain")"
        case "$pollresp" in
            *'"error"'*) echo "rpcsmoke: FAIL $chain fork_pollSubscription: $pollresp" >&2; exit 1 ;;
            *'"kind":"eof"'*) seen_eof=1 ;;
        esac
        n=$((n+1))
    done
    [ -n "$seen_eof" ] || { echo "rpcsmoke: FAIL $chain subscription never reached EOF" >&2; exit 1; }
    call "$chain" fork_unsubscribe "[\"$subid\"]"
    echo "rpcsmoke: ok   $chain subscription replay to EOF"

    headline="$(curl -s --max-time 20 "$BASE/$chain/stream?stream=newHeads&cursor=0" | sed -n '2p')"
    case "$headline" in
        *'"method":"fork_subscription"'*) echo "rpcsmoke: ok   $chain /stream" ;;
        *) echo "rpcsmoke: FAIL $chain /stream first notification: $headline" >&2; exit 1 ;;
    esac
done

lmetrics="$(curl -sf "$BASE/debug/metrics")"
for key in 'live.subscribers' 'live.events' 'live.events_dropped'; do
    case "$lmetrics" in
        *"$key"*) ;;
        *) echo "rpcsmoke: FAIL metrics snapshot missing $key" >&2; exit 1 ;;
    esac
done
echo "rpcsmoke: ok   live metrics"

# Replica tier: boot a replica following the primary's sync plane, wait
# for /readyz to flip to 200 (readiness implies the head sync caught up
# within the staleness bound), then require byte-identical answers and
# the replica-tier gauges.
echo "rpcsmoke: booting replica following $P2P..."
/tmp/forkserve -days "$DAYS" -addr "$RADDR" -follow "$P2P" -replica-name smoke >"$RLOG" 2>&1 &
RPID=$!

echo "rpcsmoke: waiting for $RBASE/readyz..."
i=0
until curl -sf "$RBASE/readyz" >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -gt 120 ]; then
        echo "rpcsmoke: replica never became ready; log:" >&2
        cat "$RLOG" >&2
        exit 1
    fi
    if ! kill -0 $RPID 2>/dev/null; then
        echo "rpcsmoke: replica exited early; log:" >&2
        cat "$RLOG" >&2
        exit 1
    fi
    sleep 1
done
echo "rpcsmoke: ok   replica /readyz"

# A caught-up replica must answer exactly what the primary answers.
for chain in eth etc; do
    for body in \
        '{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}' \
        '{"jsonrpc":"2.0","id":1,"method":"eth_getBlockByNumber","params":["0x1",true]}' \
        '{"jsonrpc":"2.0","id":1,"method":"fork_difficultyWindow","params":["0x1","0x20"]}'; do
        want="$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "$BASE/$chain")"
        got="$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "$RBASE/$chain")"
        if [ "$want" != "$got" ]; then
            echo "rpcsmoke: FAIL replica $chain answer diverges from primary" >&2
            echo "  primary: $want" >&2
            echo "  replica: $got" >&2
            exit 1
        fi
    done
    echo "rpcsmoke: ok   replica /$chain matches primary"
done

rmetrics="$(curl -sf "$RBASE/debug/metrics")"
for key in 'sync.lag_blocks' 'sync.eth.lag_blocks' 'serve.degraded' 'rpc.failovers' 'rpc.hedged'; do
    case "$rmetrics" in
        *"$key"*) ;;
        *) echo "rpcsmoke: FAIL replica metrics snapshot missing $key" >&2; exit 1 ;;
    esac
done
echo "rpcsmoke: ok   replica /debug/metrics"

# Graceful drain: SIGTERM must finish in-flight work, flush the stores
# and exit 0 with the clean-shutdown log line.
kill -TERM $RPID
i=0
while kill -0 $RPID 2>/dev/null; do
    i=$((i+1))
    if [ "$i" -gt 30 ]; then
        echo "rpcsmoke: replica did not drain within 30s; log:" >&2
        cat "$RLOG" >&2
        exit 1
    fi
    sleep 1
done
wait $RPID 2>/dev/null || {
    echo "rpcsmoke: replica exited nonzero on SIGTERM; log:" >&2
    cat "$RLOG" >&2
    exit 1
}
RPID=""
case "$(cat "$RLOG")" in
    *'drained and closed cleanly'*) echo "rpcsmoke: ok   replica graceful drain" ;;
    *) echo "rpcsmoke: FAIL replica drain log missing clean-shutdown line:" >&2
       cat "$RLOG" >&2
       exit 1 ;;
esac

echo "rpcsmoke: PASS"
