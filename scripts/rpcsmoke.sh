#!/bin/sh
# rpcsmoke boots forkserve on a throwaway port, curls every served method
# on both chain endpoints, checks /debug/metrics, and fails on any
# malformed response. CI's RPC smoke job runs this; `make rpcsmoke`
# locally does the same.
set -eu

ADDR="${RPCSMOKE_ADDR:-127.0.0.1:18545}"
BASE="http://$ADDR"
DAYS="${RPCSMOKE_DAYS:-1}"
LOG="$(mktemp)"
GO="${GO:-go}"

echo "rpcsmoke: building forkserve..."
$GO build -o /tmp/forkserve ./cmd/forkserve

/tmp/forkserve -days "$DAYS" -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null || true; rm -f "$LOG"' EXIT

echo "rpcsmoke: waiting for $BASE/healthz..."
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -gt 120 ]; then
        echo "rpcsmoke: server never came up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 $PID 2>/dev/null; then
        echo "rpcsmoke: server exited early; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done

# call CHAIN METHOD PARAMS — posts one JSON-RPC request and requires a
# non-null "result" member in the response.
call() {
    chain="$1"; method="$2"; params="$3"
    body="{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"$method\",\"params\":$params}"
    resp="$(curl -sf -X POST -H 'Content-Type: application/json' -d "$body" "$BASE/$chain")" || {
        echo "rpcsmoke: FAIL $chain $method: transport error" >&2; exit 1; }
    case "$resp" in
        *'"error"'*)
            echo "rpcsmoke: FAIL $chain $method: $resp" >&2; exit 1 ;;
        *'"result"'*)
            echo "rpcsmoke: ok   $chain $method" ;;
        *)
            echo "rpcsmoke: FAIL $chain $method: no result member: $resp" >&2; exit 1 ;;
    esac
}

for chain in eth etc; do
    # Head, then a real block hash + tx hash pulled out of block 1 for the
    # lookup methods (block 1 always exists after a 1-day run; tx lookups
    # tolerate a null result on an empty block via the jq-free check).
    call "$chain" eth_blockNumber '[]'
    call "$chain" eth_getBlockByNumber '["0x1",true]'
    call "$chain" eth_getBlockByNumber '["latest",false]'

    hash=$(curl -s -X POST -H 'Content-Type: application/json' \
        -d '{"jsonrpc":"2.0","id":1,"method":"eth_getBlockByNumber","params":["0x1",false]}' \
        "$BASE/$chain" | sed -n 's/.*"hash":"\(0x[0-9a-f]*\)".*/\1/p')
    [ -n "$hash" ] || { echo "rpcsmoke: FAIL $chain: no block hash extracted" >&2; exit 1; }
    call "$chain" eth_getBlockByHash "[\"$hash\",false]"

    miner=$(curl -s -X POST -H 'Content-Type: application/json' \
        -d '{"jsonrpc":"2.0","id":1,"method":"eth_getBlockByNumber","params":["0x1",false]}' \
        "$BASE/$chain" | sed -n 's/.*"miner":"\(0x[0-9a-f]*\)".*/\1/p')
    call "$chain" eth_getBalance "[\"$miner\",\"latest\"]"
    call "$chain" eth_getTransactionCount "[\"$miner\",\"latest\"]"

    txhash=""
    n=1
    while [ -z "$txhash" ] && [ "$n" -le 32 ]; do
        txhash=$(curl -s -X POST -H 'Content-Type: application/json' \
            -d "{\"jsonrpc\":\"2.0\",\"id\":1,\"method\":\"eth_getBlockByNumber\",\"params\":[\"$(printf '0x%x' $n)\",false]}" \
            "$BASE/$chain" | sed -n 's/.*"transactions":\["\(0x[0-9a-f]*\)".*/\1/p')
        n=$((n+1))
    done
    if [ -n "$txhash" ]; then
        call "$chain" eth_getTransactionByHash "[\"$txhash\"]"
        call "$chain" eth_getTransactionReceipt "[\"$txhash\"]"
    else
        echo "rpcsmoke: note $chain blocks 1-32 carry no txs; skipping tx lookups"
    fi

    call "$chain" fork_difficultyWindow '["0x1","0x20"]'
    call "$chain" fork_echoCandidates '["0x1","0x20"]'
    call "$chain" fork_poolShares '["0x1","0x20"]'
done

metrics="$(curl -sf "$BASE/debug/metrics")"
for key in 'rpc.eth.eth_blockNumber.requests' 'rpc.etc.eth_blockNumber.requests' 'storage.eth.reads'; do
    case "$metrics" in
        *"$key"*) ;;
        *) echo "rpcsmoke: FAIL metrics snapshot missing $key" >&2; exit 1 ;;
    esac
done
echo "rpcsmoke: ok   /debug/metrics"

echo "rpcsmoke: PASS"
