#!/bin/sh
# livesmoke is the live measurement plane's end-to-end gate: boot
# forkserve -live (the archive serves WHILE the scenario simulates),
# follow the event feed over RPC with forkanalyze -follow into CSV
# tables, run the identical scenario through the batch exporter
# (forksim -mode full), and require the two CSV sets byte-identical —
# the streaming analyzer's convergence guarantee, exercised over a real
# HTTP wire. It also checks the streamed head against the polled
# eth_blockNumber and the subscription metrics. The convergence diff
# lands in $OUT/convergence.diff (empty on success; CI uploads it).
set -eu

ADDR="${LIVESMOKE_ADDR:-127.0.0.1:18555}"
BASE="http://$ADDR"
SEED="${LIVESMOKE_SEED:-9}"
DAYS="${LIVESMOKE_DAYS:-2}"
OUT="${LIVESMOKE_OUT:-live-smoke-out}"
GO="${GO:-go}"
LOG="$(mktemp)"

mkdir -p "$OUT"
: > "$OUT/convergence.diff"

echo "livesmoke: building forkserve, forkanalyze, forksim..."
$GO build -o /tmp/forkserve ./cmd/forkserve
$GO build -o /tmp/forkanalyze ./cmd/forkanalyze
$GO build -o /tmp/forksim ./cmd/forksim

/tmp/forkserve -seed "$SEED" -days "$DAYS" -live -addr "$ADDR" >"$LOG" 2>&1 &
PID=$!
trap 'kill $PID 2>/dev/null || true; rm -f "$LOG"' EXIT

echo "livesmoke: waiting for $BASE/healthz..."
i=0
until curl -sf "$BASE/healthz" >/dev/null 2>&1; do
    i=$((i+1))
    if [ "$i" -gt 60 ]; then
        echo "livesmoke: server never came up; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    if ! kill -0 $PID 2>/dev/null; then
        echo "livesmoke: server exited early; log:" >&2
        cat "$LOG" >&2
        exit 1
    fi
    sleep 1
done

# Follow the live run to its EOF marker; the analyzer writes its
# converged CSV tables when the feed completes.
echo "livesmoke: following the live feed..."
/tmp/forkanalyze -follow "$BASE" -out "$OUT/live"

# The streamed head must equal the served head: replay the newHeads
# stream for the first route and compare its last head number against
# eth_blockNumber on the same route.
route="$(curl -s "$BASE/readyz" | sed -n 's/.*"routes":{"\([a-z0-9]*\)".*/\1/p')"
[ -n "$route" ] || { echo "livesmoke: FAIL no route discovered from /readyz" >&2; exit 1; }
streamed_head="$(curl -s --max-time 30 "$BASE/$route/stream?stream=newHeads&cursor=0" \
    | sed -n 's/.*"number":\([0-9]*\).*/\1/p' | tail -1)"
polled_hex="$(curl -s -X POST -H 'Content-Type: application/json' \
    -d '{"jsonrpc":"2.0","id":1,"method":"eth_blockNumber","params":[]}' \
    "$BASE/$route" | sed -n 's/.*"result":"0x\([0-9a-f]*\)".*/\1/p')"
polled_head="$(printf '%d' "0x$polled_hex")"
if [ -z "$streamed_head" ] || [ "$streamed_head" -ne "$polled_head" ]; then
    echo "livesmoke: FAIL streamed head ($streamed_head) != polled head ($polled_head) on /$route" >&2
    exit 1
fi
echo "livesmoke: ok   streamed head matches polled head ($polled_head) on /$route"

# Subscription gauges must be present after the follow traffic.
metrics="$(curl -sf "$BASE/debug/metrics")"
for key in 'live.subscribers' 'live.events' 'live.events_dropped'; do
    case "$metrics" in
        *"$key"*) ;;
        *) echo "livesmoke: FAIL metrics snapshot missing $key" >&2; exit 1 ;;
    esac
done
echo "livesmoke: ok   subscription metrics"

# Ground truth: the identical scenario through the batch exporter.
echo "livesmoke: running the batch export for comparison..."
/tmp/forksim -seed "$SEED" -days "$DAYS" -mode full -out "$OUT/batch" >/dev/null

status=0
for f in blocks.csv txs.csv days.csv; do
    if ! diff -u "$OUT/batch/$f" "$OUT/live/$f" >>"$OUT/convergence.diff" 2>&1; then
        echo "livesmoke: FAIL $f diverges between live follow and batch export" >&2
        status=1
    else
        echo "livesmoke: ok   $f byte-identical (live follow vs batch export)"
    fi
done
[ "$status" -eq 0 ] || { echo "livesmoke: diff in $OUT/convergence.diff" >&2; exit 1; }

echo "livesmoke: PASS"
