package forkwatch_test

import (
	"bytes"
	"fmt"
	"testing"

	"forkwatch"
	"forkwatch/internal/analysis"
)

// renderFigures writes every figure CSV the forksim binary emits into
// byte buffers keyed by file name.
func renderFigures(t *testing.T, rep *forkwatch.Report) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	put := func(name string, s forkwatch.Series) {
		var buf bytes.Buffer
		if err := forkwatch.WriteFigureCSV(&buf, s); err != nil {
			t.Fatalf("render %s: %v", name, err)
		}
		out[name] = buf.Bytes()
	}
	bph, diffH, deltaH := rep.Figure1()
	put("fig1_blocks_per_hour.csv", bph)
	put("fig1_difficulty.csv", diffH)
	put("fig1_delta.csv", deltaH)
	diffD, txD, pctC := rep.Figure2()
	put("fig2_difficulty.csv", diffD)
	put("fig2_tx_per_day.csv", txD)
	put("fig2_pct_contract.csv", pctC)
	hpu, _ := rep.Figure3()
	put("fig3_hashes_per_usd.csv", hpu)
	echoPct, echoes := rep.Figure4()
	put("fig4_echo_pct.csv", echoPct)
	put("fig4_echoes_per_day.csv", echoes)
	for n, s := range rep.Figure5() {
		put(fmt.Sprintf("fig5_top%d.csv", n), s)
	}
	return out
}

// TestChaosFiguresByteIdentical is the storage chaos acceptance test: a
// full-fidelity run under 20% injected read/write faults, random torn
// batches and scheduled mid-commit crash/restart cycles must produce
// figure CSVs byte-identical to the fault-free run. Faults are absorbed
// by retries, WAL recovery and deterministic re-mining — never by
// changing what the simulation observes.
func TestChaosFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity chaos run")
	}
	mk := func() *forkwatch.Scenario {
		sc := forkwatch.NewScenario(5, 2)
		sc.Mode = forkwatch.ModeFull
		sc.DayLength = 3600
		sc.Users = 40
		sc.ETHTxPerDay = 30
		sc.ETCTxPerDay = 12
		return sc
	}

	clean, err := forkwatch.Run(mk())
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}

	chaos := mk()
	chaos.StorageFaults = forkwatch.StorageFaults{
		Seed:          99,
		ReadErrRate:   0.20,
		WriteErrRate:  0.20,
		TornBatchRate: 0.002,
	}
	chaos.StorageRetryAttempts = 24 // 0.2^24: transient faults never go fatal
	chaos.Crashes = []forkwatch.CrashSpec{
		{Chain: "ETH", Day: 0, Block: 4, Op: 3},    // early in the state-trie batch
		{Chain: "ETH", Day: 1, Block: 2, Op: 40},   // deep in the commit, or the next block's
		{Chain: "ETC", Day: 1, Block: 0, Op: 1},    // first write of an ETC commit
		{Chain: "ETH", Day: 1, Block: 7, Op: 1000}, // far beyond one block: lands blocks later
	}
	eng, err := forkwatch.NewEngine(chaos)
	if err != nil {
		t.Fatalf("chaos engine: %v", err)
	}
	col := analysis.NewCollector(chaos.Epoch)
	eng.AddObserver(col)
	if err := eng.Run(); err != nil {
		t.Fatalf("chaos run: %v", err)
	}
	faulty := &forkwatch.Report{Scenario: chaos, Collector: col}

	// The run must have exercised the chaos paths, not dodged them.
	if fired := eng.CrashesFired(); fired == 0 {
		t.Error("no scheduled crashes fired; chaos run is vacuous")
	}
	if evs := eng.StorageFaultEvents(); evs == 0 {
		t.Error("no storage faults logged; chaos run is vacuous")
	}

	want := renderFigures(t, clean)
	got := renderFigures(t, faulty)
	if len(got) != len(want) {
		t.Fatalf("figure count: got %d want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("%s missing from chaos run", name)
			continue
		}
		if !bytes.Equal(g, w) {
			t.Errorf("%s differs between fault-free and chaos runs (%d vs %d bytes)", name, len(w), len(g))
		}
	}
	if cs, fs := clean.Summary(), faulty.Summary(); cs != fs {
		t.Errorf("summaries diverge:\nclean:\n%s\nchaos:\n%s", cs, fs)
	}
}
