// Command partitionlint is the repo's go vet-style guard for the N-way
// partition refactor: it fails when non-test code in the core packages
// hard-wires the historical pair through the string literals "ETH",
// "ETC", "eth" or "etc". Partition identity must flow from the registry
// (Scenario.PartitionSpecs / sim.Registry), never from baked-in names —
// a hard-wired literal is exactly the kind of two-way assumption the
// refactor removed.
//
// The scan parses every non-test Go file under the given directories
// (default: the root package, internal/ and cmd/) and flags string
// literals exactly equal to a banned name. Comments never match, and
// longer strings that merely contain a name (usage examples, log
// formats) never match either.
//
// A small allowlist covers the places that intentionally speak about the
// historical pair:
//
//   - internal/sim/legacy.go      (the legacy two-way synthesis itself)
//   - internal/chain/config.go    (the historical ETH/ETC chain configs)
//   - cmd/forknode/main.go        (a single historical node by name)
//   - golden.go                   (the locked-down two-way golden configs)
//
// Usage:
//
//	go run ./tools/partitionlint [dir ...]
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// banned are the literals that signal a hard-wired two-way assumption.
var banned = map[string]bool{
	`"ETH"`: true,
	`"ETC"`: true,
	`"eth"`: true,
	`"etc"`: true,
}

// allowed are repo-relative files that legitimately name the historical
// pair.
var allowed = map[string]bool{
	"internal/sim/legacy.go":   true,
	"internal/chain/config.go": true,
	"cmd/forknode/main.go":     true,
	"golden.go":                true,
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("partitionlint: ")

	root, err := os.Getwd()
	if err != nil {
		log.Fatal(err)
	}
	targets := os.Args[1:]
	if len(targets) == 0 {
		targets = defaultTargets(root)
	}

	var findings []string
	fset := token.NewFileSet()
	for _, t := range targets {
		err := filepath.WalkDir(t, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "testdata" || strings.HasPrefix(d.Name(), ".") {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				rel = path
			}
			rel = filepath.ToSlash(rel)
			if allowed[rel] {
				return nil
			}
			findings = append(findings, lintFile(fset, path, rel)...)
			return nil
		})
		if err != nil {
			log.Fatal(err)
		}
	}

	sort.Strings(findings)
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		log.Fatalf("%d hard-wired partition literal(s); route them through the partition registry or extend the allowlist", len(findings))
	}
}

// defaultTargets scans the root package's own files plus internal/ and
// cmd/ (WalkDir on the individual root files keeps vendor-ish dirs like
// examples/ and tools/ out of scope).
func defaultTargets(root string) []string {
	targets, err := filepath.Glob(filepath.Join(root, "*.go"))
	if err != nil {
		log.Fatal(err)
	}
	for _, dir := range []string{"internal", "cmd"} {
		if _, err := os.Stat(filepath.Join(root, dir)); err == nil {
			targets = append(targets, filepath.Join(root, dir))
		}
	}
	return targets
}

// lintFile parses one file and returns a finding per banned literal.
func lintFile(fset *token.FileSet, path, rel string) []string {
	f, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return []string{fmt.Sprintf("%s: parse error: %v", rel, err)}
	}
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING || !banned[lit.Value] {
			return true
		}
		pos := fset.Position(lit.Pos())
		out = append(out, fmt.Sprintf("%s:%d:%d: hard-wired partition literal %s", rel, pos.Line, pos.Column, lit.Value))
		return true
	})
	return out
}
