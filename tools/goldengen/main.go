// Command goldengen regenerates testdata/golden_twoway.json: SHA-256
// digests of every figure CSV for the canonical two-way scenarios that
// golden_test.go locks down. Run it ONLY when figure output is meant to
// change (a calibration change, a new figure column); refactors must
// leave the digests untouched — that is the point of the golden file.
//
//	go run ./tools/goldengen > testdata/golden_twoway.json
package main

import (
	"bytes"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"log"
	"os"
	"sort"

	"forkwatch"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("goldengen: ")

	digests := map[string]string{}
	for _, gc := range forkwatch.GoldenConfigs() {
		rep, err := forkwatch.Run(gc.Scenario())
		if err != nil {
			log.Fatalf("%s: %v", gc.Name, err)
		}
		figs, err := forkwatch.RenderFigures(rep)
		if err != nil {
			log.Fatalf("%s: render: %v", gc.Name, err)
		}
		for name, data := range figs {
			digests[gc.Name+"/"+name] = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}

	keys := make([]string, 0, len(digests))
	for k := range digests {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, k := range keys {
		kj, _ := json.Marshal(k)
		vj, _ := json.Marshal(digests[k])
		fmt.Fprintf(&buf, "  %s: %s", kj, vj)
		if i < len(keys)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	os.Stdout.Write(buf.Bytes())
}
