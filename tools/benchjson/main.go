// Command benchjson converts `go test -bench` text output into a JSON
// array, one object per benchmark line. It reads a file named on the
// command line (or stdin) and writes JSON to stdout:
//
//	go test -run '^$' -bench . -benchmem ./... | go run ./tools/benchjson > BENCH.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func main() {
	var in io.Reader = os.Stdin
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}

	var results []result
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := result{Name: fields[0], Iterations: iters}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		results = append(results, r)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
