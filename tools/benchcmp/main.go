// Command benchcmp diffs two benchjson snapshots (BENCH_*.json),
// reporting the ns/op and allocs/op delta for every benchmark present in
// both files plus the entries only one side has. It is a report, not a
// gate: the exit code is 0 regardless of direction, so CI can surface
// regressions without flaking on noisy runners.
//
//	go run ./tools/benchcmp BENCH_pr2.json BENCH_pr5.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func load(path string) (map[string]result, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]result, len(rs))
	var order []string
	for _, r := range rs {
		if _, dup := m[r.Name]; !dup {
			order = append(order, r.Name)
		}
		m[r.Name] = r // last wins on duplicates (re-runs append)
	}
	return m, order, nil
}

func pctDelta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0.0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	oldM, _, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newM, newOrder, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	fmt.Printf("%-70s %15s %15s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "ns delta", "allocs")
	var onlyOld, onlyNew []string
	for _, name := range newOrder {
		nr := newM[name]
		or, ok := oldM[name]
		if !ok {
			onlyNew = append(onlyNew, name)
			continue
		}
		allocDelta := "0"
		if or.AllocsPerOp != 0 || nr.AllocsPerOp != 0 {
			allocDelta = pctDelta(float64(or.AllocsPerOp), float64(nr.AllocsPerOp))
		}
		fmt.Printf("%-70s %15.0f %15.0f %9s %9s\n", name, or.NsPerOp, nr.NsPerOp,
			pctDelta(or.NsPerOp, nr.NsPerOp), allocDelta)
	}
	for name := range oldM {
		if _, ok := newM[name]; !ok {
			onlyOld = append(onlyOld, name)
		}
	}
	sort.Strings(onlyOld)
	for _, name := range onlyOld {
		fmt.Printf("%-70s removed (was %.0f ns/op)\n", name, oldM[name].NsPerOp)
	}
	for _, name := range onlyNew {
		fmt.Printf("%-70s only in new file: %.0f ns/op\n", name, newM[name].NsPerOp)
	}
}
