// Command benchcmp diffs two benchjson snapshots (BENCH_*.json),
// reporting the ns/op and allocs/op delta for every benchmark present in
// both files plus the entries only one side has. By default it is a
// report, not a gate: the exit code is 0 regardless of direction, so CI
// can surface regressions without flaking on noisy runners. With
// -threshold N it becomes an opt-in gate, exiting 1 when any benchmark's
// ns/op regressed by more than N percent; -alloc-threshold N does the
// same for allocs/op, which is far less noisy than wall time on shared
// runners and is the primary CI gate for the pooled-allocation engine.
//
//	go run ./tools/benchcmp BENCH_pr2.json BENCH_pr6.json
//	go run ./tools/benchcmp -threshold 25 -alloc-threshold 10 BENCH_pr2.json BENCH_pr6.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

func load(path string) (map[string]result, []string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	var rs []result
	if err := json.Unmarshal(data, &rs); err != nil {
		return nil, nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]result, len(rs))
	var order []string
	for _, r := range rs {
		if _, dup := m[r.Name]; !dup {
			order = append(order, r.Name)
		}
		m[r.Name] = r // last wins on duplicates (re-runs append)
	}
	return m, order, nil
}

func pctDelta(old, new float64) string {
	if old == 0 {
		if new == 0 {
			return "0.0%"
		}
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", 100*(new-old)/old)
}

func main() {
	threshold := flag.Float64("threshold", 0,
		"exit nonzero if any ns/op regression exceeds this percentage (0 = report only, never fail)")
	allocThreshold := flag.Float64("alloc-threshold", 0,
		"exit nonzero if any allocs/op regression exceeds this percentage (0 = report only, never fail)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold PCT] OLD.json NEW.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	oldM, _, err := load(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newM, newOrder, err := load(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}

	fmt.Printf("%-70s %15s %15s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "ns delta", "allocs")
	var onlyOld, onlyNew, regressed []string
	for _, name := range newOrder {
		nr := newM[name]
		or, ok := oldM[name]
		if !ok {
			onlyNew = append(onlyNew, name)
			continue
		}
		allocDelta := "0"
		if or.AllocsPerOp != 0 || nr.AllocsPerOp != 0 {
			allocDelta = pctDelta(float64(or.AllocsPerOp), float64(nr.AllocsPerOp))
		}
		fmt.Printf("%-70s %15.0f %15.0f %9s %9s\n", name, or.NsPerOp, nr.NsPerOp,
			pctDelta(or.NsPerOp, nr.NsPerOp), allocDelta)
		if *threshold > 0 && or.NsPerOp > 0 {
			if pct := 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp; pct > *threshold {
				regressed = append(regressed,
					fmt.Sprintf("%s: %+.1f%% ns/op (threshold %.1f%%)", name, pct, *threshold))
			}
		}
		if *allocThreshold > 0 && or.AllocsPerOp > 0 {
			if pct := 100 * float64(nr.AllocsPerOp-or.AllocsPerOp) / float64(or.AllocsPerOp); pct > *allocThreshold {
				regressed = append(regressed,
					fmt.Sprintf("%s: %+.1f%% allocs/op (threshold %.1f%%)", name, pct, *allocThreshold))
			}
		}
	}
	for name := range oldM {
		if _, ok := newM[name]; !ok {
			onlyOld = append(onlyOld, name)
		}
	}
	sort.Strings(onlyOld)
	for _, name := range onlyOld {
		fmt.Printf("%-70s removed (was %.0f ns/op)\n", name, oldM[name].NsPerOp)
	}
	for _, name := range onlyNew {
		fmt.Printf("%-70s only in new file: %.0f ns/op\n", name, newM[name].NsPerOp)
	}
	if len(regressed) > 0 {
		fmt.Fprintf(os.Stderr, "\nbenchcmp: %d benchmark(s) regressed past the threshold:\n", len(regressed))
		for _, r := range regressed {
			fmt.Fprintln(os.Stderr, "  "+r)
		}
		os.Exit(1)
	}
}
