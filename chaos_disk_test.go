package forkwatch_test

import (
	"bytes"
	"fmt"
	"testing"

	"forkwatch"
	"forkwatch/internal/analysis"
)

// TestChaosDiskFiguresByteIdentical ports the storage chaos acceptance
// test to the disk backend: a full-fidelity run persisting through
// log-structured segment files under 20% injected file faults (read
// errors, write errors, bit-rot), random short/torn appends and
// scheduled mid-commit crash/restart cycles must produce figure CSVs
// byte-identical to the fault-free in-memory run — at serial and
// parallel partition stepping alike. Faults are absorbed by
// truncate-repair, retries, segment replay, WAL redo and deterministic
// re-mining — never by changing what the simulation observes.
func TestChaosDiskFiguresByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fidelity chaos run")
	}
	mk := func() *forkwatch.Scenario {
		sc := forkwatch.NewScenario(5, 2)
		sc.Mode = forkwatch.ModeFull
		sc.DayLength = 3600
		sc.Users = 40
		sc.ETHTxPerDay = 30
		sc.ETCTxPerDay = 12
		return sc
	}

	clean, err := forkwatch.Run(mk())
	if err != nil {
		t.Fatalf("fault-free run: %v", err)
	}
	want := renderFigures(t, clean)

	for _, par := range []int{1, 4} {
		t.Run(fmt.Sprintf("parallelism=%d", par), func(t *testing.T) {
			chaos := mk()
			chaos.Parallelism = par
			chaos.Storage = forkwatch.StorageConfig{
				Backend: forkwatch.StorageDisk,
				DataDir: t.TempDir(),
			}
			chaos.StorageFaults = forkwatch.StorageFaults{
				Seed:          99,
				ReadErrRate:   0.20,
				WriteErrRate:  0.20,
				CorruptRate:   0.01,
				TornBatchRate: 0.002, // maps to both short and crashing torn appends on disk
			}
			chaos.StorageRetryAttempts = 24 // 0.2^24: transient faults never go fatal
			chaos.Crashes = []forkwatch.CrashSpec{
				{Chain: "ETH", Day: 0, Block: 4, Op: 3},
				{Chain: "ETH", Day: 1, Block: 2, Op: 40},
				{Chain: "ETC", Day: 1, Block: 0, Op: 1},
				{Chain: "ETH", Day: 1, Block: 7, Op: 1000},
			}
			eng, err := forkwatch.NewEngine(chaos)
			if err != nil {
				t.Fatalf("chaos engine: %v", err)
			}
			col := analysis.NewCollector(chaos.Epoch)
			eng.AddObserver(col)
			if err := eng.Run(); err != nil {
				t.Fatalf("chaos run: %v", err)
			}
			faulty := &forkwatch.Report{Scenario: chaos, Collector: col}

			// The run must have exercised the chaos paths, not dodged them.
			if fired := eng.CrashesFired(); fired == 0 {
				t.Error("no scheduled crashes fired; chaos run is vacuous")
			}
			if evs := eng.StorageFaultEvents(); evs == 0 {
				t.Error("no storage faults logged; chaos run is vacuous")
			}
			if s := eng.StorageStats(); s.Repairs == 0 {
				t.Error("no segment repairs counted; torn appends never reached recovery")
			}

			got := renderFigures(t, faulty)
			if len(got) != len(want) {
				t.Fatalf("figure count: got %d want %d", len(got), len(want))
			}
			for name, w := range want {
				g, ok := got[name]
				if !ok {
					t.Errorf("%s missing from chaos run", name)
					continue
				}
				if !bytes.Equal(g, w) {
					t.Errorf("%s differs between fault-free mem and disk chaos runs (%d vs %d bytes)", name, len(w), len(g))
				}
			}
			if cs, fs := clean.Summary(), faulty.Summary(); cs != fs {
				t.Errorf("summaries diverge:\nclean:\n%s\nchaos:\n%s", cs, fs)
			}
		})
	}
}
