module forkwatch

go 1.22
